(* Tests for basalt.obs: registry determinism, instrument semantics,
   the disabled sink's zero-interaction guarantee, and the trace
   JSONL/CSV round-trip. *)

module Obs = Basalt_obs.Obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* --- Registry --- *)

let registry_get_or_create () =
  let t = Obs.create () in
  let c1 = Obs.counter t "a" in
  let c2 = Obs.counter t "a" in
  Obs.Counter.incr c1;
  Obs.Counter.add c2 2;
  check_int "same cell by name" 3 (Obs.Counter.value c1);
  let g = Obs.gauge t "g" in
  Obs.Gauge.set g 1.5;
  check_float "gauge set" 1.5 (Obs.Gauge.value (Obs.gauge t "g"))

let registry_kind_clash () =
  let t = Obs.create () in
  ignore (Obs.counter t "x");
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs: \"x\" already registered as a counter") (fun () ->
      ignore (Obs.gauge t "x"))

let registry_snapshot_order () =
  (* Snapshot order is registration order, not alphabetical and not
     hash order — that is what keeps reports bit-identical. *)
  let t = Obs.create () in
  Obs.Counter.incr (Obs.counter t "zz");
  Obs.Gauge.set (Obs.gauge t "aa") 2.0;
  Obs.Counter.add (Obs.counter t "mm") 5;
  Alcotest.(check (list (pair string (float 1e-9))))
    "registration order"
    [ ("zz", 1.0); ("aa", 2.0); ("mm", 5.0) ]
    (Obs.snapshot t)

let registry_snapshot_deterministic () =
  (* Two registries fed the same operations render identically,
     regardless of interleaved lookups. *)
  let feed t =
    let c = Obs.counter t "basalt.rounds" in
    let g = Obs.gauge t "basalt.max_msg_bytes" in
    let h = Obs.histogram t "basalt.msg_bytes" in
    for i = 1 to 10 do
      Obs.Counter.incr c;
      Obs.Gauge.set_max g (float_of_int (i * 100));
      Obs.Histogram.observe h (float_of_int (i * 100));
      (* re-lookup mid-stream must hit the same cells *)
      Obs.Counter.incr (Obs.counter t "basalt.rounds")
    done;
    Obs.render t
  in
  check_string "bit-identical renders" (feed (Obs.create ()))
    (feed (Obs.create ()))

(* --- Counters, gauges, histograms --- *)

let counter_semantics () =
  let t = Obs.create () in
  let c = Obs.counter t "c" in
  check_int "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  check_int "accumulates" 42 (Obs.Counter.value c)

let gauge_semantics () =
  let t = Obs.create () in
  let g = Obs.gauge t "g" in
  check_float "starts at zero" 0.0 (Obs.Gauge.value g);
  Obs.Gauge.set g 5.0;
  Obs.Gauge.set g 3.0;
  check_float "set overwrites" 3.0 (Obs.Gauge.value g);
  Obs.Gauge.set_max g 2.0;
  check_float "set_max keeps max" 3.0 (Obs.Gauge.value g);
  Obs.Gauge.set_max g 7.0;
  check_float "set_max raises" 7.0 (Obs.Gauge.value g)

let histogram_bucket_edges () =
  let t = Obs.create () in
  let h = Obs.histogram ~edges:[| 10.0; 20.0 |] t "h" in
  (* Edges are inclusive upper bounds; beyond the last edge lands in
     the overflow bucket. *)
  List.iter (Obs.Histogram.observe h) [ 0.0; 10.0; 10.5; 20.0; 21.0 ];
  check_int "count" 5 (Obs.Histogram.count h);
  check_float "sum" 61.5 (Obs.Histogram.sum h);
  Alcotest.(check (array int))
    "bucket counts (<=10, <=20, overflow)" [| 2; 2; 1 |]
    (Obs.Histogram.bucket_counts h);
  Alcotest.(check (array (float 1e-9)))
    "edges preserved" [| 10.0; 20.0 |] (Obs.Histogram.edges h)

let histogram_default_edges () =
  let t = Obs.create () in
  let h = Obs.histogram t "bytes" in
  Alcotest.(check (array (float 1e-9)))
    "powers of two 64..65536"
    [| 64.0; 128.0; 256.0; 512.0; 1024.0; 2048.0; 4096.0; 8192.0; 16384.0;
       32768.0; 65536.0 |]
    (Obs.Histogram.edges h)

let histogram_bad_edges () =
  let t = Obs.create () in
  Alcotest.check_raises "unsorted edges"
    (Invalid_argument "Obs.histogram: edges must be strictly increasing")
    (fun () -> ignore (Obs.histogram ~edges:[| 2.0; 1.0 |] t "bad"));
  Alcotest.check_raises "empty edges"
    (Invalid_argument "Obs.histogram: empty edges") (fun () ->
      ignore (Obs.histogram ~edges:[||] t "empty"))

(* --- Disabled sink --- *)

let disabled_zero_interaction () =
  check_bool "not enabled" false (Obs.enabled Obs.disabled);
  check_bool "not tracing" false (Obs.tracing Obs.disabled);
  (* Dummies are fresh: mutating one is invisible to the next lookup,
     so nothing is ever shared between call sites (or domains). *)
  let c = Obs.counter Obs.disabled "x" in
  Obs.Counter.incr c;
  check_int "dummy mutated locally" 1 (Obs.Counter.value c);
  check_int "next lookup is fresh" 0
    (Obs.Counter.value (Obs.counter Obs.disabled "x"));
  Obs.trace Obs.disabled ~name:"e" [ ("k", Obs.Int 1) ];
  check_int "no events recorded" 0 (Obs.event_count Obs.disabled);
  check_bool "empty snapshot" true (Obs.snapshot Obs.disabled = []);
  (* set_clock must not mutate the global disabled value *)
  Obs.set_clock Obs.disabled (fun () -> 99.0);
  Obs.trace Obs.disabled ~name:"e" [];
  check_int "still no events" 0 (Obs.event_count Obs.disabled)

(* --- Tracing --- *)

let trace_records_events () =
  let now = ref 1.0 in
  let t = Obs.create ~clock:(fun () -> !now) ~trace:true () in
  check_bool "tracing on" true (Obs.tracing t);
  Obs.trace t ~name:"engine.send" [ ("src", Obs.Int 0); ("dst", Obs.Int 1) ];
  now := 2.5;
  Obs.trace t ~name:"engine.deliver" [ ("kind", Obs.Str "pull") ];
  check_int "two events" 2 (Obs.event_count t);
  match Obs.events t with
  | [ e1; e2 ] ->
      check_float "first stamp" 1.0 e1.Obs.time;
      check_string "first name" "engine.send" e1.Obs.name;
      check_float "second stamp" 2.5 e2.Obs.time;
      check_bool "fields kept in order" true
        (e1.Obs.fields = [ ("src", Obs.Int 0); ("dst", Obs.Int 1) ])
  | _ -> Alcotest.fail "expected two events"

let trace_off_by_default () =
  let t = Obs.create () in
  check_bool "instruments only" false (Obs.tracing t);
  Obs.trace t ~name:"e" [];
  check_int "trace is a no-op" 0 (Obs.event_count t)

let jsonl_round_trip () =
  let t = Obs.create ~clock:(fun () -> 3.25) ~trace:true () in
  Obs.trace t ~name:"msg"
    [
      ("src", Obs.Int 7);
      ("bytes", Obs.Float 88.5);
      ("kind", Obs.Str "pull-reply");
      ("quoted", Obs.Str "a\"b\\c");
    ];
  let line = String.trim (Obs.events_to_jsonl t) in
  check_bool "looks like json" true
    (String.length line > 2 && line.[0] = '{'
    && line.[String.length line - 1] = '}');
  match Obs.event_of_json line with
  | None -> Alcotest.fail "round trip parse failed"
  | Some e ->
      check_float "time survives" 3.25 e.Obs.time;
      check_string "name survives" "msg" e.Obs.name;
      check_bool "fields survive" true
        (e.Obs.fields
        = [
            ("src", Obs.Int 7);
            ("bytes", Obs.Float 88.5);
            ("kind", Obs.Str "pull-reply");
            ("quoted", Obs.Str "a\"b\\c");
          ])

let jsonl_extra_fields () =
  let t = Obs.create ~trace:true () in
  Obs.trace t ~name:"e" [ ("k", Obs.Int 1) ];
  let line =
    String.trim (Obs.events_to_jsonl ~extra:[ ("proto", Obs.Str "basalt") ] t)
  in
  match Obs.event_of_json line with
  | None -> Alcotest.fail "parse with extra failed"
  | Some e ->
      check_bool "extra comes back as a field" true
        (List.mem_assoc "proto" e.Obs.fields
        && List.assoc "proto" e.Obs.fields = Obs.Str "basalt")

let event_of_json_rejects_garbage () =
  check_bool "not json" true (Obs.event_of_json "nonsense" = None);
  check_bool "missing keys" true (Obs.event_of_json "{\"a\":1}" = None);
  check_bool "empty" true (Obs.event_of_json "" = None)

let csv_rendering () =
  let t = Obs.create ~clock:(fun () -> 1.0) ~trace:true () in
  Obs.trace t ~name:"e" [ ("k", Obs.Int 2) ];
  let csv = Obs.events_to_csv t in
  check_bool "header present" true
    (String.length csv >= 17 && String.sub csv 0 17 = "time,event,fields");
  check_bool "k=v packed" true
    (String.length csv > 0
    &&
    let lines = String.split_on_char '\n' csv in
    List.exists (fun l -> l = "1,e,k=2") lines)

(* --- Render --- *)

let render_lists_instruments () =
  let t = Obs.create () in
  Obs.Counter.add (Obs.counter t "basalt.rounds") 30;
  Obs.Gauge.set (Obs.gauge t "basalt.max_msg_bytes") 94.0;
  Obs.Histogram.observe (Obs.histogram t "basalt.msg_bytes") 94.0;
  let r = Obs.render t in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and rl = String.length r in
        let rec scan i = i + nl <= rl && (String.sub r i nl = needle || scan (i + 1)) in
        scan 0
      in
      check_bool (Printf.sprintf "render mentions %s" needle) true found)
    [ "basalt.rounds"; "basalt.max_msg_bytes"; "basalt.msg_bytes"; "30" ]

(* --- properties: order-independence of commutative instrument ops ---

   Instrument values (and therefore snapshots, renders, and trace
   columns) must depend only on the multiset of operations applied, not
   on their interleaving — that is what keeps `-j N` traces
   bit-identical (DESIGN.md §8).  Operands are integer-valued so float
   accumulation is exact and the comparison can be byte-for-byte. *)

module Check = Basalt_check.Check
module Gen = Check.Gen
module Print = Check.Print

type op = Incr | Add of int | Set_max of int | Observe of int

let print_op = function
  | Incr -> "Incr"
  | Add n -> Printf.sprintf "Add %d" n
  | Set_max n -> Printf.sprintf "Set_max %d" n
  | Observe n -> Printf.sprintf "Observe %d" n

let op_gen =
  Gen.oneof
    [
      Gen.return Incr;
      Gen.map (fun n -> Add n) (Gen.nat ~max:100);
      Gen.map (fun n -> Set_max n) (Gen.nat ~max:1000);
      Gen.map (fun n -> Observe n) (Gen.nat ~max:1000);
    ]

let ops_gen = Gen.list ~max_len:40 op_gen

let apply_ops ops =
  let t = Obs.create () in
  let c = Obs.counter t "basalt.rounds" in
  let g = Obs.gauge t "basalt.max_msg_bytes" in
  let h = Obs.histogram t "basalt.msg_bytes" in
  List.iter
    (function
      | Incr -> Obs.Counter.incr c
      | Add n -> Obs.Counter.add c n
      | Set_max n -> Obs.Gauge.set_max g (float_of_int n)
      | Observe n -> Obs.Histogram.observe h (float_of_int n))
    ops;
  ( Obs.render t,
    Obs.snapshot t,
    Obs.Histogram.bucket_counts h,
    Obs.Histogram.sum h )

let prop_snapshot_order_independent =
  Check.prop ~name:"equal op multisets render byte-identically" ~count:150
    ~print:(Print.list print_op) ops_gen
    (fun ops -> apply_ops ops = apply_ops (List.rev ops))

(* Reference model: instrument values are simple folds over the ops. *)
let prop_snapshot_matches_model =
  Check.prop ~name:"instrument values match a fold over the ops" ~count:150
    ~print:(Print.list print_op) ops_gen
    (fun ops ->
      let _, snapshot, buckets, _ = apply_ops ops in
      let counter =
        List.fold_left
          (fun acc -> function Incr -> acc + 1 | Add n -> acc + n | _ -> acc)
          0 ops
      in
      let gauge =
        List.fold_left
          (fun acc -> function
            | Set_max n -> Float.max acc (float_of_int n) | _ -> acc)
          0.0 ops
      in
      let observes =
        List.fold_left
          (fun acc -> function Observe _ -> acc + 1 | _ -> acc)
          0 ops
      in
      (* snapshot carries counters and gauges; histograms expose their
         totals through bucket counts. *)
      snapshot
      = [
          ("basalt.rounds", float_of_int counter);
          ("basalt.max_msg_bytes", gauge);
        ]
      && Array.fold_left ( + ) 0 buckets = observes)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "get or create" `Quick registry_get_or_create;
          Alcotest.test_case "kind clash" `Quick registry_kind_clash;
          Alcotest.test_case "snapshot order" `Quick registry_snapshot_order;
          Alcotest.test_case "deterministic render" `Quick
            registry_snapshot_deterministic;
        ] );
      ( "instruments",
        [
          Alcotest.test_case "counter" `Quick counter_semantics;
          Alcotest.test_case "gauge" `Quick gauge_semantics;
          Alcotest.test_case "histogram bucket edges" `Quick
            histogram_bucket_edges;
          Alcotest.test_case "histogram default edges" `Quick
            histogram_default_edges;
          Alcotest.test_case "histogram bad edges" `Quick histogram_bad_edges;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "zero interaction" `Quick
            disabled_zero_interaction;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records events" `Quick trace_records_events;
          Alcotest.test_case "off by default" `Quick trace_off_by_default;
          Alcotest.test_case "jsonl round trip" `Quick jsonl_round_trip;
          Alcotest.test_case "jsonl extra fields" `Quick jsonl_extra_fields;
          Alcotest.test_case "rejects garbage" `Quick
            event_of_json_rejects_garbage;
          Alcotest.test_case "csv rendering" `Quick csv_rendering;
        ] );
      ( "render",
        [
          Alcotest.test_case "lists instruments" `Quick
            render_lists_instruments;
        ] );
      Check.suite "properties"
        [ prop_snapshot_order_independent; prop_snapshot_matches_model ];
    ]
