(* Tests for basalt.obs: registry determinism, instrument semantics,
   the disabled sink's zero-interaction guarantee, and the trace
   JSONL/CSV round-trip. *)

module Obs = Basalt_obs.Obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* --- Registry --- *)

let registry_get_or_create () =
  let t = Obs.create () in
  let c1 = Obs.counter t "a" in
  let c2 = Obs.counter t "a" in
  Obs.Counter.incr c1;
  Obs.Counter.add c2 2;
  check_int "same cell by name" 3 (Obs.Counter.value c1);
  let g = Obs.gauge t "g" in
  Obs.Gauge.set g 1.5;
  check_float "gauge set" 1.5 (Obs.Gauge.value (Obs.gauge t "g"))

let registry_kind_clash () =
  let t = Obs.create () in
  ignore (Obs.counter t "x");
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs: \"x\" already registered as a counter") (fun () ->
      ignore (Obs.gauge t "x"))

let registry_snapshot_order () =
  (* Snapshot order is registration order, not alphabetical and not
     hash order — that is what keeps reports bit-identical. *)
  let t = Obs.create () in
  Obs.Counter.incr (Obs.counter t "zz");
  Obs.Gauge.set (Obs.gauge t "aa") 2.0;
  Obs.Counter.add (Obs.counter t "mm") 5;
  Alcotest.(check (list (pair string (float 1e-9))))
    "registration order"
    [ ("zz", 1.0); ("aa", 2.0); ("mm", 5.0) ]
    (Obs.snapshot t)

let registry_snapshot_deterministic () =
  (* Two registries fed the same operations render identically,
     regardless of interleaved lookups. *)
  let feed t =
    let c = Obs.counter t "basalt.rounds" in
    let g = Obs.gauge t "basalt.max_msg_bytes" in
    let h = Obs.histogram t "basalt.msg_bytes" in
    for i = 1 to 10 do
      Obs.Counter.incr c;
      Obs.Gauge.set_max g (float_of_int (i * 100));
      Obs.Histogram.observe h (float_of_int (i * 100));
      (* re-lookup mid-stream must hit the same cells *)
      Obs.Counter.incr (Obs.counter t "basalt.rounds")
    done;
    Obs.render t
  in
  check_string "bit-identical renders" (feed (Obs.create ()))
    (feed (Obs.create ()))

(* --- Counters, gauges, histograms --- *)

let counter_semantics () =
  let t = Obs.create () in
  let c = Obs.counter t "c" in
  check_int "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  check_int "accumulates" 42 (Obs.Counter.value c)

let gauge_semantics () =
  let t = Obs.create () in
  let g = Obs.gauge t "g" in
  check_float "starts at zero" 0.0 (Obs.Gauge.value g);
  Obs.Gauge.set g 5.0;
  Obs.Gauge.set g 3.0;
  check_float "set overwrites" 3.0 (Obs.Gauge.value g);
  Obs.Gauge.set_max g 2.0;
  check_float "set_max keeps max" 3.0 (Obs.Gauge.value g);
  Obs.Gauge.set_max g 7.0;
  check_float "set_max raises" 7.0 (Obs.Gauge.value g)

let histogram_bucket_edges () =
  let t = Obs.create () in
  let h = Obs.histogram ~edges:[| 10.0; 20.0 |] t "h" in
  (* Edges are inclusive upper bounds; beyond the last edge lands in
     the overflow bucket. *)
  List.iter (Obs.Histogram.observe h) [ 0.0; 10.0; 10.5; 20.0; 21.0 ];
  check_int "count" 5 (Obs.Histogram.count h);
  check_float "sum" 61.5 (Obs.Histogram.sum h);
  Alcotest.(check (array int))
    "bucket counts (<=10, <=20, overflow)" [| 2; 2; 1 |]
    (Obs.Histogram.bucket_counts h);
  Alcotest.(check (array (float 1e-9)))
    "edges preserved" [| 10.0; 20.0 |] (Obs.Histogram.edges h)

let histogram_default_edges () =
  let t = Obs.create () in
  let h = Obs.histogram t "bytes" in
  Alcotest.(check (array (float 1e-9)))
    "powers of two 64..65536"
    [| 64.0; 128.0; 256.0; 512.0; 1024.0; 2048.0; 4096.0; 8192.0; 16384.0;
       32768.0; 65536.0 |]
    (Obs.Histogram.edges h)

let histogram_bad_edges () =
  let t = Obs.create () in
  Alcotest.check_raises "unsorted edges"
    (Invalid_argument "Obs.histogram: edges must be strictly increasing")
    (fun () -> ignore (Obs.histogram ~edges:[| 2.0; 1.0 |] t "bad"));
  Alcotest.check_raises "empty edges"
    (Invalid_argument "Obs.histogram: empty edges") (fun () ->
      ignore (Obs.histogram ~edges:[||] t "empty"))

(* --- Disabled sink --- *)

let disabled_zero_interaction () =
  check_bool "not enabled" false (Obs.enabled Obs.disabled);
  check_bool "not tracing" false (Obs.tracing Obs.disabled);
  (* Dummies are fresh: mutating one is invisible to the next lookup,
     so nothing is ever shared between call sites (or domains). *)
  let c = Obs.counter Obs.disabled "x" in
  Obs.Counter.incr c;
  check_int "dummy mutated locally" 1 (Obs.Counter.value c);
  check_int "next lookup is fresh" 0
    (Obs.Counter.value (Obs.counter Obs.disabled "x"));
  Obs.trace Obs.disabled ~name:"e" [ ("k", Obs.Int 1) ];
  check_int "no events recorded" 0 (Obs.event_count Obs.disabled);
  check_bool "empty snapshot" true (Obs.snapshot Obs.disabled = []);
  (* set_clock must not mutate the global disabled value *)
  Obs.set_clock Obs.disabled (fun () -> 99.0);
  Obs.trace Obs.disabled ~name:"e" [];
  check_int "still no events" 0 (Obs.event_count Obs.disabled)

(* --- Tracing --- *)

let trace_records_events () =
  let now = ref 1.0 in
  let t = Obs.create ~clock:(fun () -> !now) ~trace:true () in
  check_bool "tracing on" true (Obs.tracing t);
  Obs.trace t ~name:"engine.send" [ ("src", Obs.Int 0); ("dst", Obs.Int 1) ];
  now := 2.5;
  Obs.trace t ~name:"engine.deliver" [ ("kind", Obs.Str "pull") ];
  check_int "two events" 2 (Obs.event_count t);
  match Obs.events t with
  | [ e1; e2 ] ->
      check_float "first stamp" 1.0 e1.Obs.time;
      check_string "first name" "engine.send" e1.Obs.name;
      check_float "second stamp" 2.5 e2.Obs.time;
      check_bool "fields kept in order" true
        (e1.Obs.fields = [ ("src", Obs.Int 0); ("dst", Obs.Int 1) ])
  | _ -> Alcotest.fail "expected two events"

let trace_off_by_default () =
  let t = Obs.create () in
  check_bool "instruments only" false (Obs.tracing t);
  Obs.trace t ~name:"e" [];
  check_int "trace is a no-op" 0 (Obs.event_count t)

let jsonl_round_trip () =
  let t = Obs.create ~clock:(fun () -> 3.25) ~trace:true () in
  Obs.trace t ~name:"msg"
    [
      ("src", Obs.Int 7);
      ("bytes", Obs.Float 88.5);
      ("kind", Obs.Str "pull-reply");
      ("quoted", Obs.Str "a\"b\\c");
    ];
  let line = String.trim (Obs.events_to_jsonl t) in
  check_bool "looks like json" true
    (String.length line > 2 && line.[0] = '{'
    && line.[String.length line - 1] = '}');
  match Obs.event_of_json line with
  | None -> Alcotest.fail "round trip parse failed"
  | Some e ->
      check_float "time survives" 3.25 e.Obs.time;
      check_string "name survives" "msg" e.Obs.name;
      check_bool "fields survive" true
        (e.Obs.fields
        = [
            ("src", Obs.Int 7);
            ("bytes", Obs.Float 88.5);
            ("kind", Obs.Str "pull-reply");
            ("quoted", Obs.Str "a\"b\\c");
          ])

let jsonl_extra_fields () =
  let t = Obs.create ~trace:true () in
  Obs.trace t ~name:"e" [ ("k", Obs.Int 1) ];
  let line =
    String.trim (Obs.events_to_jsonl ~extra:[ ("proto", Obs.Str "basalt") ] t)
  in
  match Obs.event_of_json line with
  | None -> Alcotest.fail "parse with extra failed"
  | Some e ->
      check_bool "extra comes back as a field" true
        (List.mem_assoc "proto" e.Obs.fields
        && List.assoc "proto" e.Obs.fields = Obs.Str "basalt")

let event_of_json_rejects_garbage () =
  check_bool "not json" true (Obs.event_of_json "nonsense" = None);
  check_bool "missing keys" true (Obs.event_of_json "{\"a\":1}" = None);
  check_bool "empty" true (Obs.event_of_json "" = None)

let csv_rendering () =
  let t = Obs.create ~clock:(fun () -> 1.0) ~trace:true () in
  Obs.trace t ~name:"e" [ ("k", Obs.Int 2) ];
  let csv = Obs.events_to_csv t in
  check_bool "header present" true
    (String.length csv >= 17 && String.sub csv 0 17 = "time,event,fields");
  check_bool "k=v packed" true
    (String.length csv > 0
    &&
    let lines = String.split_on_char '\n' csv in
    List.exists (fun l -> l = "1.0,e,k=2") lines)

(* Pinned regression: string values carrying the pack metacharacters
   (';' ',' '"' '=') must not corrupt the k=v packing (issue 8). *)
let csv_escapes_metacharacters () =
  let t = Obs.create ~clock:(fun () -> 1.0) ~trace:true () in
  Obs.trace t ~name:"e"
    [
      ("msg", Obs.Str "a;b=c");
      ("quote", Obs.Str "say \"hi\"");
      ("comma", Obs.Str "x,y");
      ("plain", Obs.Int 7);
    ];
  let csv = Obs.events_to_csv t in
  let lines = String.split_on_char '\n' csv in
  check_bool "escaped line pinned" true
    (List.exists
       (fun l ->
         l
         = "1.0,e,\"msg=\"\"a;b=c\"\";quote=\"\"say \"\"\"\"hi\"\"\"\"\"\";\
            comma=\"\"x,y\"\";plain=7\"")
       lines)

(* --- Quantiles: histogram interpolation and the log-bucket sketch --- *)

let histogram_quantile () =
  let t = Obs.create () in
  let h = Obs.histogram ~edges:[| 10.0; 20.0; 40.0 |] t "h" in
  check_float "empty reads zero" 0.0 (Obs.Histogram.quantile h 0.5);
  (* 10 observations in (10, 20]: the median interpolates to the bucket
     midpoint, the extremes to the edges. *)
  for _ = 1 to 10 do
    Obs.Histogram.observe h 15.0
  done;
  check_float "median interpolates" 15.0 (Obs.Histogram.quantile h 0.5);
  check_float "q=1 reaches the upper edge" 20.0 (Obs.Histogram.quantile h 1.0);
  Obs.Histogram.observe h 100.0;
  check_float "overflow clamps to last edge" 40.0
    (Obs.Histogram.quantile h 1.0);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Obs.Histogram.quantile: q outside [0, 1]") (fun () ->
      ignore (Obs.Histogram.quantile h 1.5))

let sketch_semantics () =
  let s = Obs.Sketch.make () in
  check_float "empty quantile" 0.0 (Obs.Sketch.quantile s 0.5);
  for i = 1 to 1000 do
    Obs.Sketch.add s (float_of_int i)
  done;
  check_int "count" 1000 (Obs.Sketch.count s);
  check_float "sum exact" 500500.0 (Obs.Sketch.sum s);
  check_float "min exact" 1.0 (Obs.Sketch.vmin s);
  check_float "max exact" 1000.0 (Obs.Sketch.vmax s);
  let eps = Obs.Sketch.relative_error in
  List.iter
    (fun (q, true_v) ->
      let est = Obs.Sketch.quantile s q in
      check_bool
        (Printf.sprintf "q=%g within relative error (est %g, true %g)" q est
           true_v)
        true
        (Float.abs (est -. true_v) <= (eps +. 1e-9) *. true_v))
    [ (0.5, 500.0); (0.9, 900.0); (0.99, 990.0) ];
  check_float "q=0 exact here" 1.0 (Obs.Sketch.quantile s 0.0);
  check_float "q=1 exact here" 1000.0 (Obs.Sketch.quantile s 1.0);
  (* Zeros and negatives land in the low cell; the low cell reads back
     as 0, clamped into the observed range. *)
  let z = Obs.Sketch.make () in
  Obs.Sketch.add z 0.0;
  Obs.Sketch.add z (-5.0);
  check_float "low cell reads zero" 0.0 (Obs.Sketch.quantile z 1.0);
  check_float "negative min preserved" (-5.0) (Obs.Sketch.vmin z)

let sketch_fingerprint s =
  (Obs.Sketch.buckets s, Obs.Sketch.count s, Obs.Sketch.sum s,
   Obs.Sketch.vmin s, Obs.Sketch.vmax s)

(* Merge is bucket-wise integer addition, hence exactly associative and
   commutative; integer-valued observations keep the float sums exact so
   the comparison is structural equality, not approximate. *)
let sketch_merge_associative () =
  let mk seed n =
    let s = Obs.Sketch.make () in
    for i = 1 to n do
      Obs.Sketch.add s (float_of_int (((seed * 7919) + (i * 104729)) mod 5000))
    done;
    s
  in
  let a = mk 1 100 and b = mk 2 250 and c = mk 3 50 in
  let open Obs.Sketch in
  check_bool "associative" true
    (sketch_fingerprint (merge (merge a b) c)
    = sketch_fingerprint (merge a (merge b c)));
  check_bool "commutative" true
    (sketch_fingerprint (merge a b) = sketch_fingerprint (merge b a));
  check_bool "identity" true
    (sketch_fingerprint (merge a (make ())) = sketch_fingerprint a);
  check_bool "inputs not mutated" true
    (count a = 100 && count b = 250 && count c = 50)

let series_windows () =
  let t = Obs.create () in
  let s = Obs.series t "sim.view_byz" in
  Obs.Series.observe s 1.0;
  Obs.Series.observe s 3.0;
  Obs.roll_series t;
  Obs.Series.observe s 5.0;
  Obs.roll_series t;
  Obs.roll_series t;
  check_int "three closed windows" 3 (Obs.Series.window_count s);
  check_int "total observations" 3 (Obs.Series.total s);
  check_float "grand sum" 9.0 (Obs.Series.grand_sum s);
  (match Obs.Series.windows s with
  | [ w1; w2; w3 ] ->
      check_int "w1 count" 2 w1.Obs.Series.w_count;
      check_float "w1 sum" 4.0 w1.Obs.Series.w_sum;
      check_float "w1 min" 1.0 w1.Obs.Series.w_min;
      check_float "w1 max" 3.0 w1.Obs.Series.w_max;
      check_int "w2 count" 1 w2.Obs.Series.w_count;
      check_int "w3 empty" 0 w3.Obs.Series.w_count
  | _ -> Alcotest.fail "expected three windows");
  check_bool "series excluded from snapshot" true (Obs.snapshot t = [])

(* --- Spans --- *)

let span_emits_single_event () =
  let now = ref 2.0 in
  let t = Obs.create ~clock:(fun () -> !now) ~trace:true () in
  let sp = Obs.span t ~name:"basalt.pull" [ ("src", Obs.Int 3) ] in
  check_int "nothing emitted while open" 0 (Obs.event_count t);
  now := 5.5;
  Obs.span_end ~fields:[ ("ok", Obs.Int 1) ] t sp;
  match Obs.events t with
  | [ e ] ->
      check_string "named after the span" "basalt.pull" e.Obs.name;
      check_float "stamped at close" 5.5 e.Obs.time;
      check_bool "sid, t0, dur, then both field sets" true
        (e.Obs.fields
        = [
            ("sid", Obs.Int 0);
            ("t0", Obs.Float 2.0);
            ("dur", Obs.Float 3.5);
            ("src", Obs.Int 3);
            ("ok", Obs.Int 1);
          ])
  | _ -> Alcotest.fail "expected exactly one event"

let span_ids_sequential () =
  let t = Obs.create ~trace:true () in
  let a = Obs.span t ~name:"a" [] in
  let b = Obs.span t ~name:"b" [] in
  (* Close out of order: ids were fixed at open time. *)
  Obs.span_end t b;
  Obs.span_end t a;
  match Obs.events t with
  | [ eb; ea ] ->
      check_bool "b has sid 1" true (List.assoc "sid" eb.Obs.fields = Obs.Int 1);
      check_bool "a has sid 0" true (List.assoc "sid" ea.Obs.fields = Obs.Int 0)
  | _ -> Alcotest.fail "expected two events"

let span_noop_without_tracing () =
  let t = Obs.create () in
  let sp = Obs.span t ~name:"x" [ ("k", Obs.Int 1) ] in
  Obs.span_end t sp;
  check_int "no events" 0 (Obs.event_count t);
  (* The disabled sink behaves the same. *)
  Obs.span_end Obs.disabled (Obs.span Obs.disabled ~name:"y" []);
  check_int "disabled emits nothing" 0 (Obs.event_count Obs.disabled)

(* --- Render --- *)

let render_lists_instruments () =
  let t = Obs.create () in
  Obs.Counter.add (Obs.counter t "basalt.rounds") 30;
  Obs.Gauge.set (Obs.gauge t "basalt.max_msg_bytes") 94.0;
  Obs.Histogram.observe (Obs.histogram t "basalt.msg_bytes") 94.0;
  let r = Obs.render t in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and rl = String.length r in
        let rec scan i = i + nl <= rl && (String.sub r i nl = needle || scan (i + 1)) in
        scan 0
      in
      check_bool (Printf.sprintf "render mentions %s" needle) true found)
    [ "basalt.rounds"; "basalt.max_msg_bytes"; "basalt.msg_bytes"; "30" ]

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let render_shows_percentiles () =
  let t = Obs.create () in
  let h = Obs.histogram ~edges:[| 10.0; 20.0 |] t "net.rtt" in
  for _ = 1 to 4 do
    Obs.Histogram.observe h 15.0
  done;
  let s = Obs.sketch t "basalt.pull_rtt" in
  for i = 1 to 100 do
    Obs.Sketch.add s (float_of_int i)
  done;
  let r = Obs.render t in
  check_bool "histogram p50" true (contains r "p50=15.0");
  check_bool "sketch line present" true (contains r "sketch     basalt.pull_rtt");
  check_bool "sketch p99 present" true (contains r "p99=");
  check_bool "sketch max exact" true (contains r "max=100.0")

let prometheus_rendering () =
  let t = Obs.create () in
  Obs.Counter.add (Obs.counter t "net.datagrams_out") 12;
  Obs.Gauge.set (Obs.gauge t "basalt.view_size") 160.0;
  let h = Obs.histogram ~edges:[| 10.0; 20.0 |] t "net.msg_bytes" in
  Obs.Histogram.observe h 5.0;
  Obs.Histogram.observe h 15.0;
  Obs.Histogram.observe h 99.0;
  let s = Obs.sketch t "gossip.hop_latency" in
  Obs.Sketch.add s 2.0;
  Obs.Series.observe (Obs.series t "sim.view_byz") 1.0;
  let p = Obs.render_prometheus t in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "exposition has %S" needle) true
        (contains p needle))
    [
      "# TYPE net_datagrams_out counter\nnet_datagrams_out 12\n";
      "# TYPE basalt_view_size gauge\nbasalt_view_size 160.0\n";
      "net_msg_bytes_bucket{le=\"10.0\"} 1\n";
      "net_msg_bytes_bucket{le=\"20.0\"} 2\n";
      "net_msg_bytes_bucket{le=\"+Inf\"} 3\n";
      "net_msg_bytes_count 3\n";
      "# TYPE gossip_hop_latency summary";
      "gossip_hop_latency{quantile=\"0.5\"}";
      "gossip_hop_latency_count 1\n";
      "sim_view_byz_total 1\n";
    ]

(* --- properties: order-independence of commutative instrument ops ---

   Instrument values (and therefore snapshots, renders, and trace
   columns) must depend only on the multiset of operations applied, not
   on their interleaving — that is what keeps `-j N` traces
   bit-identical (DESIGN.md §8).  Operands are integer-valued so float
   accumulation is exact and the comparison can be byte-for-byte. *)

module Check = Basalt_check.Check
module Gen = Check.Gen
module Print = Check.Print

type op = Incr | Add of int | Set_max of int | Observe of int

let print_op = function
  | Incr -> "Incr"
  | Add n -> Printf.sprintf "Add %d" n
  | Set_max n -> Printf.sprintf "Set_max %d" n
  | Observe n -> Printf.sprintf "Observe %d" n

let op_gen =
  Gen.oneof
    [
      Gen.return Incr;
      Gen.map (fun n -> Add n) (Gen.nat ~max:100);
      Gen.map (fun n -> Set_max n) (Gen.nat ~max:1000);
      Gen.map (fun n -> Observe n) (Gen.nat ~max:1000);
    ]

let ops_gen = Gen.list ~max_len:40 op_gen

let apply_ops ops =
  let t = Obs.create () in
  let c = Obs.counter t "basalt.rounds" in
  let g = Obs.gauge t "basalt.max_msg_bytes" in
  let h = Obs.histogram t "basalt.msg_bytes" in
  List.iter
    (function
      | Incr -> Obs.Counter.incr c
      | Add n -> Obs.Counter.add c n
      | Set_max n -> Obs.Gauge.set_max g (float_of_int n)
      | Observe n -> Obs.Histogram.observe h (float_of_int n))
    ops;
  ( Obs.render t,
    Obs.snapshot t,
    Obs.Histogram.bucket_counts h,
    Obs.Histogram.sum h )

let prop_snapshot_order_independent =
  Check.prop ~name:"equal op multisets render byte-identically" ~count:150
    ~print:(Print.list print_op) ops_gen
    (fun ops -> apply_ops ops = apply_ops (List.rev ops))

(* Reference model: instrument values are simple folds over the ops. *)
let prop_snapshot_matches_model =
  Check.prop ~name:"instrument values match a fold over the ops" ~count:150
    ~print:(Print.list print_op) ops_gen
    (fun ops ->
      let _, snapshot, buckets, _ = apply_ops ops in
      let counter =
        List.fold_left
          (fun acc -> function Incr -> acc + 1 | Add n -> acc + n | _ -> acc)
          0 ops
      in
      let gauge =
        List.fold_left
          (fun acc -> function
            | Set_max n -> Float.max acc (float_of_int n) | _ -> acc)
          0.0 ops
      in
      let observes =
        List.fold_left
          (fun acc -> function Observe _ -> acc + 1 | _ -> acc)
          0 ops
      in
      (* snapshot carries counters and gauges; histograms expose their
         totals through bucket counts. *)
      snapshot
      = [
          ("basalt.rounds", float_of_int counter);
          ("basalt.max_msg_bytes", gauge);
        ]
      && Array.fold_left ( + ) 0 buckets = observes)

(* JSON round-trip: any event the generator can produce survives
   [event_to_json] → [event_of_json] structurally intact (issue 8). *)
let print_event (e : Obs.event) =
  Printf.sprintf "{t=%.17g; ev=%S; fields=%s}" e.Obs.time e.Obs.name
    (Print.list
       (fun (k, v) ->
         Printf.sprintf "(%S, %s)" k
           (match v with
           | Obs.Int n -> Printf.sprintf "Int %d" n
           | Obs.Float x -> Printf.sprintf "Float %.17g" x
           | Obs.Str s -> Printf.sprintf "Str %S" s))
       e.Obs.fields)

let prop_event_json_round_trip =
  Check.prop ~name:"event_of_json (event_to_json e) = Some e" ~count:300
    ~print:print_event
    (Check.Gens.obs_event ())
    (fun e -> Obs.event_of_json (Obs.event_to_json e) = Some e)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "get or create" `Quick registry_get_or_create;
          Alcotest.test_case "kind clash" `Quick registry_kind_clash;
          Alcotest.test_case "snapshot order" `Quick registry_snapshot_order;
          Alcotest.test_case "deterministic render" `Quick
            registry_snapshot_deterministic;
        ] );
      ( "instruments",
        [
          Alcotest.test_case "counter" `Quick counter_semantics;
          Alcotest.test_case "gauge" `Quick gauge_semantics;
          Alcotest.test_case "histogram bucket edges" `Quick
            histogram_bucket_edges;
          Alcotest.test_case "histogram default edges" `Quick
            histogram_default_edges;
          Alcotest.test_case "histogram bad edges" `Quick histogram_bad_edges;
          Alcotest.test_case "histogram quantile" `Quick histogram_quantile;
          Alcotest.test_case "sketch semantics" `Quick sketch_semantics;
          Alcotest.test_case "sketch merge associative" `Quick
            sketch_merge_associative;
          Alcotest.test_case "series windows" `Quick series_windows;
        ] );
      ( "spans",
        [
          Alcotest.test_case "emits single event" `Quick
            span_emits_single_event;
          Alcotest.test_case "sequential ids" `Quick span_ids_sequential;
          Alcotest.test_case "noop without tracing" `Quick
            span_noop_without_tracing;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "zero interaction" `Quick
            disabled_zero_interaction;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records events" `Quick trace_records_events;
          Alcotest.test_case "off by default" `Quick trace_off_by_default;
          Alcotest.test_case "jsonl round trip" `Quick jsonl_round_trip;
          Alcotest.test_case "jsonl extra fields" `Quick jsonl_extra_fields;
          Alcotest.test_case "rejects garbage" `Quick
            event_of_json_rejects_garbage;
          Alcotest.test_case "csv rendering" `Quick csv_rendering;
          Alcotest.test_case "csv escapes metacharacters" `Quick
            csv_escapes_metacharacters;
        ] );
      ( "render",
        [
          Alcotest.test_case "lists instruments" `Quick
            render_lists_instruments;
          Alcotest.test_case "shows percentiles" `Quick
            render_shows_percentiles;
          Alcotest.test_case "prometheus exposition" `Quick
            prometheus_rendering;
        ] );
      Check.suite "properties"
        [
          prop_snapshot_order_independent;
          prop_snapshot_matches_model;
          prop_event_json_round_trip;
        ];
    ]
