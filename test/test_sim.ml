(* Tests for basalt.sim: scenarios, measurements, reports, the runner,
   sweeps.  Runner tests use deliberately tiny networks so the whole
   suite stays fast. *)

open Basalt_sim
module Measurements = Basalt_sim.Measurements

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Scenario --- *)

let scenario_defaults () =
  let s = Scenario.make () in
  check_int "n" 1000 s.Scenario.n;
  check_float "f" 0.1 s.Scenario.f;
  check_int "byzantine" 100 (Scenario.num_byzantine s);
  check_int "correct" 900 (Scenario.num_correct s);
  Alcotest.(check string) "protocol" "basalt" (Scenario.protocol_name s)

let scenario_validation () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Scenario.make: n must be positive" (fun () ->
      ignore (Scenario.make ~n:0 ()));
  expect "Scenario.make: f out of [0,1)" (fun () ->
      ignore (Scenario.make ~f:1.0 ()));
  expect "Scenario.make: negative force" (fun () ->
      ignore (Scenario.make ~force:(-1.0) ()));
  expect "Scenario.make: bootstrap_f0 out of [0,1]" (fun () ->
      ignore (Scenario.make ~bootstrap_f0:2.0 ()))

let scenario_accessors () =
  let s =
    Scenario.make
      ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:50 ~k:10 ~rho:2.0 ()))
      ()
  in
  check_int "view size" 50 (Scenario.view_size s);
  check_float "tau" 1.0 (Scenario.tau s);
  check_float "refresh k/rho" 5.0 (Scenario.refresh_interval s);
  let brahms =
    Scenario.make ~protocol:(Scenario.Brahms (Basalt_brahms.Brahms_config.make ~l:30 ())) ()
  in
  check_int "brahms view size" 30 (Scenario.view_size brahms);
  let sps = Scenario.make ~protocol:(Scenario.Sps (Basalt_sps.Sps.config ~l:20 ())) () in
  check_int "sps view size" 20 (Scenario.view_size sps)

let scenario_with_seed () =
  let s = Scenario.make ~seed:1 () in
  let s2 = Scenario.with_seed s 99 in
  check_int "seed changed" 99 s2.Scenario.seed;
  check_int "rest unchanged" s.Scenario.n s2.Scenario.n

(* --- Measurements --- *)

let point ?(time = 0.0) ?(sample_byz = 0.0) ?(view_byz = 0.0) ?(isolated = 0.0) () =
  {
    Measurements.time;
    view_byz;
    sample_byz;
    isolated;
    clustering = None;
    mean_path = None;
    indegree_spread = None;
    metrics = None;
  }

let measurements_basics () =
  let m = Measurements.create () in
  check_int "empty" 0 (Measurements.length m);
  check_bool "no last" true (Measurements.last m = None);
  Measurements.add m (point ~time:1.0 ());
  Measurements.add m (point ~time:2.0 ());
  check_int "two" 2 (Measurements.length m);
  (match Measurements.last m with
  | Some p -> check_float "last time" 2.0 p.Measurements.time
  | None -> Alcotest.fail "expected last");
  match Measurements.points m with
  | [ p1; _ ] -> check_float "oldest first" 1.0 p1.Measurements.time
  | _ -> Alcotest.fail "expected two points"

let measurements_convergence () =
  let m = Measurements.create () in
  List.iter
    (fun (t, s) -> Measurements.add m (point ~time:t ~sample_byz:s ()))
    [ (1.0, 0.5); (2.0, 0.12); (3.0, 0.3); (4.0, 0.11); (5.0, 0.12) ];
  (* optimal 0.1, within 25% -> threshold 0.125; the suffix from t=4 on
     stays below, t=2 dips but t=3 breaks it. *)
  (match Measurements.convergence_time ~optimal:0.1 ~within:0.25 m with
  | Some t -> check_float "suffix start" 4.0 t
  | None -> Alcotest.fail "should converge");
  check_bool "never with tight bound" true
    (Measurements.convergence_time ~optimal:0.1 ~within:0.0 m = None)

let measurements_convergence_views () =
  let m = Measurements.create () in
  Measurements.add m (point ~time:1.0 ~view_byz:0.1 ~sample_byz:0.9 ());
  (match Measurements.convergence_time ~metric:`Views ~optimal:0.1 ~within:0.25 m with
  | Some t -> check_float "views metric" 1.0 t
  | None -> Alcotest.fail "views converge");
  check_bool "samples metric differs" true
    (Measurements.convergence_time ~metric:`Samples ~optimal:0.1 ~within:0.25 m = None)

let measurements_isolated_after () =
  let m = Measurements.create () in
  Measurements.add m (point ~time:1.0 ~isolated:0.5 ());
  Measurements.add m (point ~time:10.0 ~isolated:0.0 ());
  check_bool "early isolation only" false (Measurements.ever_isolated_after m 5.0);
  check_bool "caught before cutoff" true (Measurements.ever_isolated_after m 0.5)

let measurements_mean_after () =
  let m = Measurements.create () in
  List.iter
    (fun (t, v) -> Measurements.add m (point ~time:t ~view_byz:v ()))
    [ (1.0, 0.4); (2.0, 0.2); (3.0, 0.1) ];
  check_float "mean of suffix" 0.15
    (Measurements.mean_after (fun p -> p.Measurements.view_byz) m 2.0);
  check_bool "empty suffix nan" true
    (Float.is_nan (Measurements.mean_after (fun p -> p.Measurements.view_byz) m 10.0))

(* --- Report --- *)

let report_table () =
  let cols =
    [
      { Report.header = "x"; cell = (fun i -> string_of_int i) };
      { Report.header = "name"; cell = (fun i -> [| "aa"; "b" |].(i)) };
    ]
  in
  let t = Report.table ~rows:2 cols in
  check_bool "has header" true (String.length t > 0);
  let lines = String.split_on_char '\n' t in
  check_int "header + separator + 2 rows + trailing" 5 (List.length lines);
  check_bool "header present" true
    (String.length (List.nth lines 0) > 0
    && String.sub (List.nth lines 0) 0 1 = "x")

let report_csv () =
  let cols =
    [
      { Report.header = "a"; cell = (fun i -> string_of_int i) };
      { Report.header = "b"; cell = (fun _ -> "z") };
    ]
  in
  Alcotest.(check string) "csv" "a,b\n0,z\n1,z\n" (Report.csv ~rows:2 cols)

let report_write_csv () =
  let path = Filename.temp_file "basalt" ".csv" in
  Report.write_csv ~path ~rows:1
    [ { Report.header = "h"; cell = (fun _ -> "v") } ];
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header written" "h" line

let report_float_cell () =
  Alcotest.(check string) "formats" "0.1235" (Report.float_cell 0.12345);
  Alcotest.(check string) "nan" "-" (Report.float_cell Float.nan)

let report_sparkline () =
  Alcotest.(check string) "empty" "" (Report.sparkline [||]);
  Alcotest.(check string) "all nan" "" (Report.sparkline [| Float.nan |]);
  (* Constant series renders at the lowest filled level, full width. *)
  let flat = Report.sparkline ~width:4 (Array.make 4 1.0) in
  Alcotest.(check string) "flat" "▁▁▁▁" flat;
  (* Monotone series must be non-decreasing in block height. *)
  let ramp = Report.sparkline ~width:8 (Array.init 8 float_of_int) in
  Alcotest.(check string) "ramp" "▁▂▃▄▅▆▇█" ramp;
  (* Width larger than the series clamps. *)
  Alcotest.(check string) "clamped width" "▁█"
    (Report.sparkline ~width:10 [| 0.0; 1.0 |]);
  (* NaN holes render as spaces. *)
  Alcotest.(check string) "nan hole" "▁ █"
    (Report.sparkline ~width:3 [| 0.0; Float.nan; 1.0 |])

let report_series_columns () =
  let m = Measurements.create () in
  Measurements.add m (point ~time:1.0 ());
  let cols = Report.series_columns m in
  check_int "base columns" 4 (List.length cols);
  let m2 = Measurements.create () in
  Measurements.add m2
    {
      (point ~time:1.0 ()) with
      Measurements.clustering = Some 0.5;
      mean_path = Some 2.0;
      indegree_spread = Some 1.0;
    };
  check_int "with graph metrics" 7 (List.length (Report.series_columns m2));
  let m3 = Measurements.create () in
  Measurements.add m3
    {
      (point ~time:1.0 ()) with
      Measurements.metrics = Some [ ("basalt.rounds", 30.0); ("basalt.rank_evals", 1.5) ];
    };
  let cols3 = Report.series_columns m3 in
  check_int "with instrument metrics" 6 (List.length cols3);
  let headers = List.map (fun c -> c.Report.header) cols3 in
  check_bool "metric headers appended" true
    (List.mem "basalt.rounds" headers && List.mem "basalt.rank_evals" headers);
  let rounds_col =
    List.find (fun c -> c.Report.header = "basalt.rounds") cols3
  in
  Alcotest.(check string) "integral metric renders as integer" "30"
    (rounds_col.Report.cell 0)

(* --- Runner --- *)

let tiny_scenario ?(seed = 3) ?(f = 0.1) ?(protocol = Scenario.Basalt (Basalt_core.Config.make ~v:10 ~k:2 ())) () =
  Scenario.make ~name:"tiny" ~n:60 ~f ~force:2.0 ~protocol ~steps:30.0 ~seed ()

let runner_is_malicious_layout () =
  let s = tiny_scenario () in
  check_bool "last ids malicious" true
    (Runner.is_malicious s (Basalt_proto.Node_id.of_int 59));
  check_bool "first ids correct" false
    (Runner.is_malicious s (Basalt_proto.Node_id.of_int 0))

let runner_deterministic () =
  let s = tiny_scenario () in
  let r1 = Runner.run s and r2 = Runner.run s in
  check_float "same final view_byz" r1.Runner.final.Measurements.view_byz
    r2.Runner.final.Measurements.view_byz;
  check_float "same final sample_byz" r1.Runner.final.Measurements.sample_byz
    r2.Runner.final.Measurements.sample_byz;
  check_int "same transport"
    r1.Runner.transport.Basalt_engine.Engine.sent
    r2.Runner.transport.Basalt_engine.Engine.sent

let runner_seed_sensitivity () =
  let r1 = Runner.run (tiny_scenario ~seed:3 ()) in
  let r2 = Runner.run (tiny_scenario ~seed:4 ()) in
  check_bool "different seeds differ" true
    (r1.Runner.final.Measurements.view_byz
     <> r2.Runner.final.Measurements.view_byz
    || r1.Runner.adversary_pushes <> r2.Runner.adversary_pushes)

let runner_no_adversary_when_f0 () =
  let r = Runner.run (tiny_scenario ~f:0.0 ()) in
  check_int "no pushes" 0 r.Runner.adversary_pushes;
  check_float "clean views" 0.0 r.Runner.final.Measurements.view_byz;
  check_float "no isolation" 0.0 r.Runner.final.Measurements.isolated

let runner_series_recorded () =
  let r = Runner.run (tiny_scenario ()) in
  check_bool "measurements accumulated" true
    (Measurements.length r.Runner.series >= 30);
  check_int "per-node outcomes" 54 (Array.length r.Runner.per_node)

let runner_per_node_consistent () =
  let r = Runner.run (tiny_scenario ()) in
  Array.iter
    (fun o ->
      check_bool "view proportion in [0,1]" true
        (o.Runner.node_view_byz >= 0.0 && o.Runner.node_view_byz <= 1.0);
      check_bool "samples counted" true (o.Runner.node_samples_total >= 0))
    r.Runner.per_node

let runner_observer_called () =
  let called = ref 0 in
  let observer ~time:_ ~views:_ = incr called in
  ignore (Runner.run_with_observer ~observer (tiny_scenario ()));
  check_bool "observer invoked per measurement" true (!called >= 30)

let runner_graph_metrics_present () =
  let s =
    Scenario.make ~name:"metrics" ~n:60 ~f:0.1 ~force:1.0
      ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:10 ~k:2 ()))
      ~steps:10.0 ~graph_metrics:true ()
  in
  let r = Runner.run s in
  check_bool "clustering recorded" true
    (Option.is_some r.Runner.final.Measurements.clustering);
  check_bool "mean path recorded" true
    (Option.is_some r.Runner.final.Measurements.mean_path)

let runner_basalt_beats_classic () =
  (* The repository's headline behavior, in miniature. *)
  let basalt = Runner.run (tiny_scenario ()) in
  let classic =
    Runner.run
      (tiny_scenario ~protocol:(Scenario.Classic (Basalt_sps.Classic.config ~l:10 ())) ())
  in
  check_bool "basalt cleaner views" true
    (basalt.Runner.final.Measurements.view_byz
    < classic.Runner.final.Measurements.view_byz)

(* --- Churn --- *)

let churn_validation () =
  Alcotest.check_raises "rate" (Invalid_argument "Churn.make: rate out of [0,1]")
    (fun () -> ignore (Churn.make ~rate:1.5 ()));
  Alcotest.check_raises "start" (Invalid_argument "Churn.make: negative start")
    (fun () -> ignore (Churn.make ~start:(-1.0) ~rate:0.1 ()))

let churn_replacements_expectation () =
  let c = Churn.make ~rate:0.013 () in
  let rng = Basalt_prng.Rng.create ~seed:5 in
  let total = ref 0 in
  let rounds = 5000 in
  for _ = 1 to rounds do
    total := !total + Churn.replacements c rng ~correct:100
  done;
  let per_round = float_of_int !total /. float_of_int rounds in
  check_bool "expectation ~ rate * correct" true
    (Float.abs (per_round -. 1.3) < 0.1)

let churn_runner_replaces_nodes () =
  let s =
    Scenario.make ~name:"churny" ~n:60 ~f:0.1 ~force:2.0
      ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:10 ~k:2 ()))
      ~steps:30.0
      ~churn:(Churn.make ~start:5.0 ~rate:0.05 ())
      ()
  in
  let r = Runner.run s in
  check_bool "nodes were replaced" true (r.Runner.nodes_churned > 0);
  (* determinism holds with churn too *)
  let r2 = Runner.run s in
  check_int "deterministic churn" r.Runner.nodes_churned r2.Runner.nodes_churned

let churn_zero_without_model () =
  let r = Runner.run (tiny_scenario ()) in
  check_int "no churn by default" 0 r.Runner.nodes_churned

(* Crash-style churn plus dead-peer eviction: live nodes' views should
   carry far fewer references to crashed nodes than without eviction. *)
let churn_crash_and_eviction () =
  let n = 80 in
  let crash = Churn.make ~start:10.0 ~style:Churn.Crash ~rate:0.008 () in
  let scenario evict =
    Scenario.make ~name:"crashy" ~n ~f:0.0
      ~protocol:
        (Scenario.Basalt
           (Basalt_core.Config.make ~v:10 ~k:2 ?evict_after_rounds:evict ()))
      ~steps:60.0 ~churn:crash ()
  in
  let dead_reference_fraction evict =
    (* Snapshot the final views; crashed nodes report empty views, which
       identifies them. *)
    let final_views = ref [||] in
    let observer ~time:_ ~views = final_views := Array.init n views in
    let r = Runner.run_with_observer ~observer (scenario evict) in
    check_bool "some nodes crashed" true (r.Runner.nodes_churned > 5);
    let views = !final_views in
    let is_dead u = Array.length views.(u) = 0 in
    let dead_refs = ref 0 and total_refs = ref 0 in
    Array.iteri
      (fun u view ->
        if not (is_dead u) then
          Array.iter
            (fun p ->
              incr total_refs;
              if is_dead (Basalt_proto.Node_id.to_int p) then incr dead_refs)
            view)
      views;
    float_of_int !dead_refs /. float_of_int (max 1 !total_refs)
  in
  let with_eviction = dead_reference_fraction (Some 3) in
  let without = dead_reference_fraction None in
  check_bool
    (Printf.sprintf "eviction sheds dead peers (%.3f < %.3f)" with_eviction
       without)
    true
    (with_eviction < 0.6 *. without)

(* --- Bandwidth --- *)

let bandwidth_accounting () =
  let r = Runner.run (tiny_scenario ()) in
  let b = r.Runner.bandwidth in
  check_bool "correct nodes sent messages" true (b.Runner.correct_messages > 0);
  check_bool "bytes consistent" true
    (b.Runner.correct_bytes >= b.Runner.correct_messages * 4);
  check_bool "adversary sent messages" true (b.Runner.adversary_messages > 0);
  (* view of 10 four-byte ids + 4-byte header *)
  check_bool "max datagram bounded" true (b.Runner.max_datagram <= 4 + (4 * 11));
  check_bool "fits MTU" true (b.Runner.max_datagram <= 1500)

let bandwidth_no_adversary () =
  let r = Runner.run (tiny_scenario ~f:0.0 ()) in
  check_int "no adversary bytes" 0 r.Runner.bandwidth.Runner.adversary_bytes;
  check_int "no adversary messages" 0
    r.Runner.bandwidth.Runner.adversary_messages

(* --- Link models in scenarios --- *)

let runner_with_loss_still_works () =
  let s =
    Scenario.make ~name:"lossy" ~n:60 ~f:0.1 ~force:2.0
      ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:10 ~k:2 ()))
      ~steps:30.0
      ~loss:(Basalt_engine.Link.Loss.Bernoulli 0.3)
      ()
  in
  let r = Runner.run s in
  check_bool "messages dropped" true
    (r.Runner.transport.Basalt_engine.Engine.dropped > 0);
  check_bool "still produces samples" true
    (Array.exists (fun o -> o.Runner.node_samples_total > 0) r.Runner.per_node)

let runner_with_latency () =
  let s =
    Scenario.make ~name:"latent" ~n:60 ~f:0.1 ~force:2.0
      ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:10 ~k:2 ()))
      ~steps:30.0
      ~latency:(Basalt_engine.Link.Latency.Uniform { lo = 0.0; hi = 0.5 })
      ()
  in
  let r = Runner.run s in
  check_bool "converges despite jitter" true
    (r.Runner.final.Measurements.view_byz < 0.5)

(* --- Sample histogram --- *)

let runner_sample_histogram () =
  let r = Runner.run (tiny_scenario ()) in
  let total = Array.fold_left ( + ) 0 r.Runner.sample_histogram in
  let emitted =
    Array.fold_left
      (fun acc o -> acc + o.Runner.node_samples_total)
      0 r.Runner.per_node
  in
  check_int "histogram matches emissions" emitted total;
  check_int "histogram covers all ids" 60
    (Array.length r.Runner.sample_histogram)

(* --- Sweep --- *)

let sweep_aggregate () =
  let runs = Sweep.run_seeds (tiny_scenario ()) ~seeds:[ 1; 2 ] in
  check_int "two runs" 2 (List.length runs);
  let agg =
    match Sweep.aggregate runs with
    | Some a -> a
    | None -> Alcotest.fail "aggregate of two runs is Some"
  in
  check_int "runs counted" 2 agg.Sweep.runs;
  check_bool "mean in range" true
    (agg.Sweep.mean_view_byz >= 0.0 && agg.Sweep.mean_view_byz <= 1.0);
  check_bool "empty is None" true (Sweep.aggregate [] = None);
  check_float "run_aggregate matches" agg.Sweep.mean_view_byz
    (Sweep.run_aggregate (tiny_scenario ()) ~seeds:[ 1; 2 ]).Sweep.mean_view_byz;
  Alcotest.check_raises "run_aggregate rejects no seeds"
    (Invalid_argument "Sweep.run_aggregate: no seeds") (fun () ->
      ignore (Sweep.run_aggregate (tiny_scenario ()) ~seeds:[]))

let sweep_sweep () =
  let results =
    Sweep.sweep
      ~make:(fun f -> tiny_scenario ~f ())
      ~seeds:[ 1 ] [ 0.0; 0.1 ]
  in
  check_int "two points" 2 (List.length results);
  let (x0, a0), (x1, a1) = (List.nth results 0, List.nth results 1) in
  check_float "x order kept" 0.0 x0;
  check_float "x order kept 2" 0.1 x1;
  check_bool "clean run cleaner" true
    (a0.Sweep.mean_view_byz <= a1.Sweep.mean_view_byz)

let sweep_max_rho () =
  (* With a protocol that never isolates at these scales, the largest
     tested rho wins. *)
  let make ~rho =
    tiny_scenario ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:10 ~k:2 ~rho ())) ()
  in
  (match Sweep.max_rho ~make ~seeds:[ 1 ] [ 0.5; 1.0 ] with
  | Some rho -> check_bool "a tested value" true (rho = 0.5 || rho = 1.0)
  | None -> Alcotest.fail "basalt should survive some rho here");
  (* No seeds => no evidence of survival: typed failure, not an
     exception. *)
  check_bool "no seeds means None" true
    (Sweep.max_rho ~make ~seeds:[] [ 0.5; 1.0 ] = None)

(* The tentpole determinism claim: a quick-scale sweep fanned out over a
   4-domain pool is bit-for-bit (Int64 float bits) identical to the
   sequential run. *)
let sweep_parallel_determinism () =
  let make f = tiny_scenario ~f () in
  let xs = [ 0.0; 0.1; 0.2 ] in
  let seeds = [ 1; 2 ] in
  let sequential = Sweep.sweep ~make ~seeds xs in
  Basalt_parallel.Pool.with_pool ~domains:4 (fun pool ->
      let parallel = Sweep.sweep ~pool ~make ~seeds xs in
      check_int "same row count" (List.length sequential)
        (List.length parallel);
      List.iter2
        (fun (x_seq, (a : Sweep.aggregate)) (x_par, (b : Sweep.aggregate)) ->
          check_float "same x" x_seq x_par;
          let bits = Int64.bits_of_float in
          Alcotest.(check int64)
            "view_byz bits" (bits a.Sweep.mean_view_byz)
            (bits b.Sweep.mean_view_byz);
          Alcotest.(check int64)
            "sample_byz bits" (bits a.Sweep.mean_sample_byz)
            (bits b.Sweep.mean_sample_byz);
          Alcotest.(check int64)
            "isolated bits" (bits a.Sweep.mean_isolated)
            (bits b.Sweep.mean_isolated);
          check_int "isolation_runs" a.Sweep.isolation_runs
            b.Sweep.isolation_runs;
          check_int "runs" a.Sweep.runs b.Sweep.runs)
        sequential parallel)

(* The observability counterpart: metric snapshots and full JSONL traces
   from pooled runs are byte-identical to the sequential ones.  Each run
   creates its registry inside the worker (never shared), so this holds
   at any -j (DESIGN.md §8). *)
let obs_trace_parallel_determinism () =
  let s = tiny_scenario () in
  let seeds = [ 1; 2; 3; 4 ] in
  let render runs =
    String.concat "\n---\n"
      (List.map
         (fun (r : Runner.result) ->
           match r.Runner.obs with
           | None -> Alcotest.fail "tracing run should expose its sink"
           | Some sink ->
               Basalt_obs.Obs.render sink
               ^ Basalt_obs.Obs.events_to_jsonl sink)
         runs)
  in
  let sequential = render (Sweep.run_seeds ~trace:true s ~seeds) in
  check_bool "trace is non-empty" true (String.length sequential > 1000);
  Basalt_parallel.Pool.with_pool ~domains:4 (fun pool ->
      let parallel = render (Sweep.run_seeds ~pool ~trace:true s ~seeds) in
      Alcotest.(check string) "j=1 vs j=4 traces identical" sequential parallel)

(* Runs without tracing carry no sink and record no metrics: the
   zero-overhead configuration really is zero-interaction. *)
let obs_absent_by_default () =
  let r = Runner.run (tiny_scenario ()) in
  check_bool "no sink" true (r.Runner.obs = None);
  check_bool "no metrics in points" true
    (List.for_all
       (fun p -> p.Measurements.metrics = None)
       (Measurements.points r.Runner.series))

let () =
  Alcotest.run "sim"
    [
      ( "scenario",
        [
          Alcotest.test_case "defaults" `Quick scenario_defaults;
          Alcotest.test_case "validation" `Quick scenario_validation;
          Alcotest.test_case "accessors" `Quick scenario_accessors;
          Alcotest.test_case "with_seed" `Quick scenario_with_seed;
        ] );
      ( "measurements",
        [
          Alcotest.test_case "basics" `Quick measurements_basics;
          Alcotest.test_case "convergence" `Quick measurements_convergence;
          Alcotest.test_case "convergence views metric" `Quick
            measurements_convergence_views;
          Alcotest.test_case "isolated after" `Quick measurements_isolated_after;
          Alcotest.test_case "mean after" `Quick measurements_mean_after;
        ] );
      ( "report",
        [
          Alcotest.test_case "table" `Quick report_table;
          Alcotest.test_case "csv" `Quick report_csv;
          Alcotest.test_case "write csv" `Quick report_write_csv;
          Alcotest.test_case "float cell" `Quick report_float_cell;
          Alcotest.test_case "sparkline" `Quick report_sparkline;
          Alcotest.test_case "series columns" `Quick report_series_columns;
        ] );
      ( "runner",
        [
          Alcotest.test_case "malicious layout" `Quick runner_is_malicious_layout;
          Alcotest.test_case "deterministic" `Quick runner_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick runner_seed_sensitivity;
          Alcotest.test_case "no adversary when f=0" `Quick
            runner_no_adversary_when_f0;
          Alcotest.test_case "series recorded" `Quick runner_series_recorded;
          Alcotest.test_case "per-node consistent" `Quick
            runner_per_node_consistent;
          Alcotest.test_case "observer called" `Quick runner_observer_called;
          Alcotest.test_case "graph metrics present" `Quick
            runner_graph_metrics_present;
          Alcotest.test_case "basalt beats classic" `Quick
            runner_basalt_beats_classic;
        ] );
      ( "churn",
        [
          Alcotest.test_case "validation" `Quick churn_validation;
          Alcotest.test_case "replacements expectation" `Quick
            churn_replacements_expectation;
          Alcotest.test_case "runner replaces nodes" `Quick
            churn_runner_replaces_nodes;
          Alcotest.test_case "zero without model" `Quick
            churn_zero_without_model;
          Alcotest.test_case "crash churn + eviction" `Quick
            churn_crash_and_eviction;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "accounting" `Quick bandwidth_accounting;
          Alcotest.test_case "no adversary" `Quick bandwidth_no_adversary;
        ] );
      ( "link_models",
        [
          Alcotest.test_case "loss still works" `Quick
            runner_with_loss_still_works;
          Alcotest.test_case "latency jitter" `Quick runner_with_latency;
          Alcotest.test_case "sample histogram" `Quick runner_sample_histogram;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "aggregate" `Quick sweep_aggregate;
          Alcotest.test_case "sweep" `Quick sweep_sweep;
          Alcotest.test_case "max_rho" `Quick sweep_max_rho;
          Alcotest.test_case "parallel determinism j=1 vs j=4" `Quick
            sweep_parallel_determinism;
        ] );
      ( "obs",
        [
          Alcotest.test_case "trace determinism j=1 vs j=4" `Quick
            obs_trace_parallel_determinism;
          Alcotest.test_case "absent by default" `Quick obs_absent_by_default;
        ] );
    ]
