(* Tests for basalt.analysis: statistics, ODE solver, the Section 3
   continuous model, isolation bounds. *)

open Basalt_analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let close ?(tol = 1e-6) msg a b = check_bool msg true (Float.abs (a -. b) < tol)

(* --- Stats --- *)

let stats_mean_var () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" 1.25 (Stats.variance xs);
  close "stddev" (sqrt 1.25) (Stats.stddev xs);
  check_bool "empty mean nan" true (Float.is_nan (Stats.mean [||]))

let stats_percentiles () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 4.0 (Stats.percentile xs 1.0);
  check_float "median" 2.5 (Stats.median xs);
  check_float "p25" 1.75 (Stats.percentile xs 0.25);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of [0,1]") (fun () ->
      ignore (Stats.percentile xs 1.5))

let stats_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 2.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 3.0 hi

let stats_confidence () =
  let xs = Array.make 100 5.0 in
  check_float "constant data zero width" 0.0 (Stats.confidence95 xs)

let stats_online_matches_batch () =
  let xs = [| 1.5; -2.0; 7.25; 0.0; 3.125 |] in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  check_int "count" 5 (Stats.Online.count o);
  close "online mean" (Stats.mean xs) (Stats.Online.mean o);
  close "online variance" (Stats.variance xs) (Stats.Online.variance o);
  close "online stddev" (Stats.stddev xs) (Stats.Online.stddev o)

let stats_online_empty () =
  let o = Stats.Online.create () in
  check_bool "empty mean nan" true (Float.is_nan (Stats.Online.mean o))

(* --- Ode --- *)

let ode_exponential_growth () =
  (* y' = y, y(0) = 1 -> y(1) = e *)
  let y1 = Ode.final ~f:(fun ~t:_ ~y -> y) ~y0:1.0 ~t0:0.0 ~t1:1.0 ~dt:0.01 in
  close ~tol:1e-6 "e" (Float.exp 1.0) y1

let ode_decay () =
  let y1 = Ode.final ~f:(fun ~t:_ ~y -> -2.0 *. y) ~y0:1.0 ~t0:0.0 ~t1:1.0 ~dt:0.01 in
  close ~tol:1e-6 "e^-2" (Float.exp (-2.0)) y1

let ode_time_dependent () =
  (* y' = t, y(0)=0 -> y(2) = 2 *)
  let y = Ode.final ~f:(fun ~t ~y:_ -> t) ~y0:0.0 ~t0:0.0 ~t1:2.0 ~dt:0.1 in
  close ~tol:1e-9 "t^2/2" 2.0 y

let ode_trajectory_endpoints () =
  let traj = Ode.solve ~f:(fun ~t:_ ~y -> y) ~y0:1.0 ~t0:0.0 ~t1:1.0 ~dt:0.3 in
  (match traj with
  | (t0, y0) :: _ ->
      check_float "starts at t0" 0.0 t0;
      check_float "starts at y0" 1.0 y0
  | [] -> Alcotest.fail "empty trajectory");
  let tn, _ = List.nth traj (List.length traj - 1) in
  check_float "ends at t1" 1.0 tn

let ode_invalid () =
  Alcotest.check_raises "dt" (Invalid_argument "Ode.solve: dt must be positive")
    (fun () -> ignore (Ode.solve ~f:(fun ~t:_ ~y -> y) ~y0:0.0 ~t0:0.0 ~t1:1.0 ~dt:0.0));
  Alcotest.check_raises "t1<t0" (Invalid_argument "Ode.solve: t1 < t0")
    (fun () -> ignore (Ode.solve ~f:(fun ~t:_ ~y -> y) ~y0:0.0 ~t0:1.0 ~t1:0.0 ~dt:0.1))

(* --- Model --- *)

let base = Model.env ()

let model_env_validation () =
  Alcotest.check_raises "f" (Invalid_argument "Model.env: f out of [0,1)")
    (fun () -> ignore (Model.env ~f:1.0 ()));
  Alcotest.check_raises "n" (Invalid_argument "Model.env: n must be positive")
    (fun () -> ignore (Model.env ~n:0 ()))

let model_counts () =
  check_float "b_max" 1000.0 (Model.b_max base);
  check_float "q" 9000.0 (Model.q base)

let model_b_c_inverse () =
  List.iter
    (fun c ->
      close "c -> b -> c round trip" c (Model.c_of_b base (Model.b_of_c base c)))
    [ 1.0; 100.0; 5000.0 ]

let model_equilibria_are_roots () =
  match Model.equilibria base with
  | None -> Alcotest.fail "base scenario must have equilibria"
  | Some (b1, b2) ->
      close ~tol:1e-9 "dB/dt(B1) = 0" 0.0 (Model.db_dt base ~b:b1);
      close ~tol:1e-9 "dB/dt(B2) = 0" 0.0 (Model.db_dt base ~b:b2);
      check_bool "ordered" true (b1 < b2);
      check_bool "B1 above optimum" true (b1 > Model.optimal base);
      check_bool "B2 below 1" true (b2 < 1.0)

let model_db_dt_signs () =
  match Model.equilibria base with
  | None -> Alcotest.fail "expected equilibria"
  | Some (b1, b2) ->
      (* Paper: dB/dt > 0 below B1, < 0 between B1 and B2, > 0 above B2. *)
      check_bool "below B1 grows" true (Model.db_dt base ~b:(b1 /. 2.0) > 0.0);
      check_bool "between shrinks" true
        (Model.db_dt base ~b:((b1 +. b2) /. 2.0) < 0.0);
      check_bool "above B2 grows" true
        (Model.db_dt base ~b:((b2 +. 1.0) /. 2.0) > 0.0)

let model_no_equilibrium_small_view () =
  check_bool "tiny view: attack wins" true
    (Model.equilibria (Model.env ~v:10 ()) = None)

let model_paper_base_value () =
  (* n=10000, f=0.1, v=160, rho=1: B1 = (1.1 - sqrt(0.81 - 0.0703))/2 = 0.12 *)
  match Model.steady_state base with
  | Some b1 -> close ~tol:1e-3 "paper base B1" 0.12 b1
  | None -> Alcotest.fail "expected B1"

let model_trajectory_converges_to_b1 () =
  match Model.steady_state base with
  | None -> Alcotest.fail "expected B1"
  | Some b1 -> (
      match List.rev (Model.trajectory base ~b0:0.5 ~t1:500.0 ~dt:0.1) with
      | (_, b_final) :: _ -> close ~tol:1e-3 "converges to B1" b1 b_final
      | [] -> Alcotest.fail "empty trajectory")

let model_view_size_for () =
  let v = Model.view_size_for base ~target_b:0.15 in
  check_bool "found" true (v > 0);
  (match Model.steady_state { base with Model.v } with
  | Some b1 -> check_bool "meets target" true (b1 <= 0.15)
  | None -> Alcotest.fail "should be stable");
  (* one smaller view must miss the target (minimality) *)
  (match Model.steady_state { base with Model.v = v - 1 } with
  | Some b1 -> check_bool "v-1 misses" true (b1 > 0.15)
  | None -> ());
  Alcotest.check_raises "unreachable target"
    (Invalid_argument "Model.view_size_for: target below the optimum f")
    (fun () -> ignore (Model.view_size_for base ~target_b:0.05))

let model_dc_dt_balance () =
  (* At c corresponding to B1, dc/dt = 0 as well (consistency of Eqs 13/14). *)
  match Model.steady_state base with
  | None -> Alcotest.fail "expected B1"
  | Some b1 ->
      let c1 = Model.c_of_b base b1 in
      close ~tol:1e-6 "dc/dt(c1) = 0" 0.0 (Model.dc_dt base ~c:c1)

(* --- Isolation bounds (the paper's §3.3.1 worked examples) --- *)

let bound_joining_paper_example () =
  let env = Model.env ~n:10_000 ~f:0.1 ~v:200 () in
  let p =
    Isolation_bound.joining_isolation_probability ~env ~f0:0.5 ~bootstrap_size:250
  in
  check_bool "paper: < 1e-10" true (p < 1e-10);
  check_bool "positive" true (p > 0.0)

let bound_joining_monotone_in_v () =
  let p v =
    Isolation_bound.joining_isolation_probability
      ~env:(Model.env ~v ()) ~f0:0.5 ~bootstrap_size:100
  in
  check_bool "larger v safer" true (p 200 < p 100)

let bound_reset_paper_example () =
  let env = Model.env ~n:10_000 ~f:0.1 ~v:100 () in
  (* Paper: B^{v-k} < 1e-10 as soon as c > 585 (v=100, k=50). *)
  check_bool "c=585 is about the threshold" true
    (Isolation_bound.reset_isolation_probability ~env ~k:50 ~c:586.0 < 1e-10);
  check_bool "c=500 is not enough" true
    (Isolation_bound.reset_isolation_probability ~env ~k:50 ~c:500.0 > 1e-10)

let bound_delta_c_paper_example () =
  let env = Model.env ~n:10_000 ~f:0.1 ~v:100 () in
  let dc = Isolation_bound.delta_c_lower_bound ~env ~k:50 ~c0:125.0 in
  (* Paper: delta_c >= 467, c at next reset >= 592. *)
  check_bool "delta_c ~ 467" true (dc >= 467.0 && dc < 470.0);
  check_bool "c next >= 592" true (125.0 +. dc >= 592.0)

let bound_safe_threshold () =
  let env = Model.env ~n:10_000 ~f:0.1 ~v:100 () in
  let c = Isolation_bound.safe_c_threshold ~env ~k:50 ~target:1e-10 in
  check_bool "around 585" true (c > 580.0 && c < 590.0);
  check_float "no byzantine -> always safe" 0.0
    (Isolation_bound.safe_c_threshold ~env:(Model.env ~f:0.0 ()) ~k:50
       ~target:1e-10)

let bound_coupon () =
  (* Collecting all q coupons from scratch: q * H_q. *)
  let q = 10.0 in
  let expected =
    Isolation_bound.coupon_expected_trials ~q ~c0:0.0 ~delta:10
  in
  let harmonic = List.fold_left (fun acc i -> acc +. (1.0 /. float_of_int i)) 0.0
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  close ~tol:1e-9 "coupon collector total" (q *. harmonic) expected;
  check_bool "more known, fewer trials for one more" true
    (Isolation_bound.coupon_expected_trials ~q ~c0:0.0 ~delta:1
    < Isolation_bound.coupon_expected_trials ~q ~c0:9.0 ~delta:1);
  Alcotest.check_raises "delta too large"
    (Invalid_argument "Isolation_bound.coupon_expected_trials: delta too large")
    (fun () -> ignore (Isolation_bound.coupon_expected_trials ~q ~c0:5.0 ~delta:6))

let bound_received_between_resets () =
  let env = Model.env ~n:10_000 ~f:0.1 ~v:100 () in
  let r = Isolation_bound.identifiers_received_between_resets ~env ~k:50 ~c0:125.0 in
  (* (k/rho)(v/tau) c0/(fn+c0) (1-f) = 50*100*(125/1125)*0.9 = 500 *)
  close ~tol:1e-6 "paper formula" 500.0 r

(* --- Fit --- *)

let fit_linear () =
  (* y = 2x + 1 exactly. *)
  let pts = List.init 10 (fun i -> (float_of_int i, (2.0 *. float_of_int i) +. 1.0)) in
  (match Fit.linear pts with
  | Some (slope, intercept) ->
      close "slope" 2.0 slope;
      close "intercept" 1.0 intercept
  | None -> Alcotest.fail "expected fit");
  check_bool "single point" true (Fit.linear [ (1.0, 1.0) ] = None);
  check_bool "vertical data" true (Fit.linear [ (1.0, 1.0); (1.0, 2.0) ] = None)

let fit_exponential_recovers_tau () =
  (* Synthesize y(t) = 0.1 + 0.4 e^{-t/15} and recover tau = 15. *)
  let series =
    List.init 100 (fun i ->
        let t = float_of_int i in
        (t, 0.1 +. (0.4 *. Float.exp (-.t /. 15.0))))
  in
  match Fit.exponential_decay series with
  | Some fit ->
      check_bool
        (Printf.sprintf "tau ~ 15 (%.2f)" fit.Fit.tau)
        true
        (Float.abs (fit.Fit.tau -. 15.0) < 2.0);
      check_bool "plateau ~ 0.1" true (Float.abs (fit.Fit.y_inf -. 0.1) < 0.02);
      check_bool "good fit" true (fit.Fit.r_square > 0.95);
      close ~tol:1e-9 "half life consistent" (fit.Fit.tau *. Float.log 2.0)
        (Fit.half_life fit)
  | None -> Alcotest.fail "expected exponential fit"

let fit_exponential_rejects_degenerate () =
  (* A constant series has no gap to fit. *)
  let flat = List.init 20 (fun i -> (float_of_int i, 0.3)) in
  check_bool "constant rejected" true (Fit.exponential_decay flat = None);
  check_bool "too short" true
    (Fit.exponential_decay [ (0.0, 1.0); (1.0, 0.5) ] = None)

module Check = Basalt_check.Check
module Gen = Check.Gen
module Print = Check.Print

let floats_1_50 = Gen.list ~min_len:1 ~max_len:50 (Gen.float_range 0.0 100.0)

let prop_percentile_bounds =
  Check.prop ~name:"percentile between min and max" ~count:300
    ~print:(Print.pair (Print.list Print.float) Print.float)
    (Gen.pair floats_1_50 (Gen.float_range 0.0 1.0))
    (fun (l, p) ->
      let xs = Array.of_list l in
      let v = Stats.percentile xs p in
      let lo, hi = Stats.min_max xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_online_mean =
  Check.prop ~name:"online mean equals batch mean" ~count:300
    ~print:(Print.list Print.float) floats_1_50
    (fun l ->
      let xs = Array.of_list l in
      let o = Stats.Online.create () in
      Array.iter (Stats.Online.add o) xs;
      Float.abs (Stats.Online.mean o -. Stats.mean xs) < 1e-6)

let () =
  Alcotest.run "analysis"
    [
      ( "stats",
        [
          Alcotest.test_case "mean/var" `Quick stats_mean_var;
          Alcotest.test_case "percentiles" `Quick stats_percentiles;
          Alcotest.test_case "min/max" `Quick stats_min_max;
          Alcotest.test_case "confidence" `Quick stats_confidence;
          Alcotest.test_case "online matches batch" `Quick
            stats_online_matches_batch;
          Alcotest.test_case "online empty" `Quick stats_online_empty;
        ] );
      ( "ode",
        [
          Alcotest.test_case "exponential growth" `Quick ode_exponential_growth;
          Alcotest.test_case "decay" `Quick ode_decay;
          Alcotest.test_case "time dependent" `Quick ode_time_dependent;
          Alcotest.test_case "trajectory endpoints" `Quick
            ode_trajectory_endpoints;
          Alcotest.test_case "invalid" `Quick ode_invalid;
        ] );
      ( "model",
        [
          Alcotest.test_case "env validation" `Quick model_env_validation;
          Alcotest.test_case "counts" `Quick model_counts;
          Alcotest.test_case "b/c inverse" `Quick model_b_c_inverse;
          Alcotest.test_case "equilibria are roots" `Quick
            model_equilibria_are_roots;
          Alcotest.test_case "db/dt signs" `Quick model_db_dt_signs;
          Alcotest.test_case "no equilibrium small view" `Quick
            model_no_equilibrium_small_view;
          Alcotest.test_case "paper base value" `Quick model_paper_base_value;
          Alcotest.test_case "trajectory converges" `Quick
            model_trajectory_converges_to_b1;
          Alcotest.test_case "view_size_for" `Quick model_view_size_for;
          Alcotest.test_case "dc/dt balance" `Quick model_dc_dt_balance;
        ] );
      ( "isolation_bound",
        [
          Alcotest.test_case "joining (paper example)" `Quick
            bound_joining_paper_example;
          Alcotest.test_case "joining monotone in v" `Quick
            bound_joining_monotone_in_v;
          Alcotest.test_case "reset (paper example)" `Quick
            bound_reset_paper_example;
          Alcotest.test_case "delta_c (paper example)" `Quick
            bound_delta_c_paper_example;
          Alcotest.test_case "safe threshold" `Quick bound_safe_threshold;
          Alcotest.test_case "coupon collector" `Quick bound_coupon;
          Alcotest.test_case "received between resets" `Quick
            bound_received_between_resets;
        ] );
      ( "fit",
        [
          Alcotest.test_case "linear" `Quick fit_linear;
          Alcotest.test_case "exponential recovers tau" `Quick
            fit_exponential_recovers_tau;
          Alcotest.test_case "rejects degenerate" `Quick
            fit_exponential_rejects_degenerate;
        ] );
      Check.suite "properties" [ prop_percentile_bounds; prop_online_mean ];
    ]
