(* Tests for lib/scenario: the s-expression reader's print/parse
   round-trip, the malformed-input corpus with its pinned positioned
   diagnostics, the committed scenario files, and the static shape of
   the matrix expansion.  The subprocess-level contract (exit codes,
   byte-for-byte table equivalence against the hand-written
   experiments) lives in test_cli.ml. *)

module Check = Basalt_check.Check
module Sexp = Basalt_scenario.Sexp
module Spec = Basalt_scenario.Spec
module Matrix = Basalt_scenario.Matrix

(* --- Sexp round-trip property --- *)

(* Atom contents deliberately include delimiters, quotes, backslashes
   and unprintable bytes so the property exercises the quoting and
   escaping paths, not just bare atoms. *)
let atom_char =
  Check.Gen.frequency
    [
      (6, Check.Gen.map Char.chr (Check.Gen.int_range 97 122));
      (2, Check.Gen.oneofl [ '0'; '5'; '9'; '.'; '-'; '/' ]);
      ( 2,
        Check.Gen.oneofl
          [ '('; ')'; ' '; '"'; '\\'; '\n'; '\t'; '\r'; ';'; '\000'; '\127' ]
      );
    ]

let atom_string =
  Check.Gen.map
    (fun cs -> String.concat "" (List.map (String.make 1) cs))
    (Check.Gen.list ~max_len:8 atom_char)

let rec sexp_gen depth =
  if depth = 0 then Check.Gen.map Sexp.atom atom_string
  else
    Check.Gen.frequency
      [
        (3, Check.Gen.map Sexp.atom atom_string);
        ( 2,
          Check.Gen.map Sexp.list
            (Check.Gen.list ~max_len:4 (sexp_gen (depth - 1))) );
      ]

let forms_gen = Check.Gen.list ~max_len:4 (sexp_gen 3)

let print_forms forms = String.concat " " (List.map Sexp.to_string forms)

let round_trip_prop =
  Check.prop ~name:"parse (print forms) = forms" ~print:print_forms forms_gen
    (fun forms ->
      match Sexp.parse_string (print_forms forms) with
      | Error _ -> false
      | Ok parsed ->
          List.length parsed = List.length forms
          && List.for_all2 Sexp.equal forms parsed)

let sexp_suite = Check.suite "scenario sexp" [ round_trip_prop ]

(* --- malformed corpus: every diagnostic is pinned --- *)

(* Under `dune runtest` the suite runs from the build sandbox (where
   the (source_tree ../scenarios) dep lands one level up); under
   `dune exec test/test_scenario.exe` it runs from the repo root. *)
let scenarios_dir =
  if Sys.file_exists "../scenarios" then "../scenarios/" else "scenarios/"

let corpus_dir = scenarios_dir ^ "corpus/"

(* (file, position-and-message after the file-name prefix).  These are
   the parser's user interface; error-message changes must be
   deliberate. *)
let corpus =
  [
    ("unbalanced.scn", "3:1: unclosed '(' (opened at line 1, column 1)");
    ("unexpected_close.scn", "1:23: unexpected ')'");
    ( "unterminated_string.scn",
      "2:1: unterminated string (opened at line 1, column 15)" );
    ("trailing.scn", "2:1: expected a single (matrix ...) form");
    ("not_matrix.scn", "1:1: expected a (matrix ...) form");
    ("bad_number.scn", "2:12: bad number '0.x'");
    ("bad_prob.scn", "2:12: probability '1.5' out of [0,1]");
    ("unknown_key.scn", "2:9: unknown setting 'pace'");
    ("dup_axis.scn", "1:1: duplicate axis 'condition'");
    ("empty_axis.scn", "3:3: axis 'condition' has no entries");
    ("bad_pivot.scn", "1:1: pivot 'proto' does not name an axis");
    ( "pivot_not_last.scn",
      "1:1: pivot axis 'condition' must be the last axis declared" );
    ( "unknown_metric.scn",
      "5:12: unknown metric 'latency' \
       (time|samples_byz|delivered/sent|delivered|t99|redundancy)" );
    ( "gossip_metric_no_app.scn",
      "5:12: metric 'delivered' needs (app (gossip ...))" );
    ( "no_protocol.scn",
      "1:1: no protocol bound: set (protocol ...) in (base ...) or on every \
       entry of an axis" );
    ("seeds_in_axis.scn", "3:26: (seeds ...) is only allowed in (base ...)");
  ]

let corpus_diagnostics () =
  List.iter
    (fun (file, expected) ->
      let path = corpus_dir ^ file in
      match Spec.load path with
      | Ok _ -> Alcotest.failf "%s: expected a diagnostic, got Ok" file
      | Error (`Unreadable msg) ->
          Alcotest.failf "%s: expected `Invalid, got `Unreadable %s" file msg
      | Error (`Invalid msg) ->
          Alcotest.(check string) file (path ^ ":" ^ expected) msg)
    corpus

(* The corpus list and the directory must cover each other: a new
   corpus file without a pinned message (or vice versa) is a test
   hole. *)
let corpus_is_exhaustive () =
  let on_disk =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".scn")
    |> List.sort compare
  in
  let pinned = List.map fst corpus |> List.sort compare in
  Alcotest.(check (list string)) "corpus files all pinned" pinned on_disk

let missing_file_is_unreadable () =
  match Spec.load (corpus_dir ^ "no_such_file.scn") with
  | Error (`Unreadable msg) ->
      Alcotest.(check bool) "names the path" true
        (let needle = "no_such_file.scn" in
         let nl = String.length needle and hl = String.length msg in
         let rec go i =
           i + nl <= hl && (String.sub msg i nl = needle || go (i + 1))
         in
         go 0)
  | Ok _ | Error (`Invalid _) -> Alcotest.fail "expected `Unreadable"

(* --- committed scenario files --- *)

let load_ok path =
  match Spec.load path with
  | Ok spec -> spec
  | Error (`Unreadable msg) | Error (`Invalid msg) -> Alcotest.fail msg

let committed_files_load () =
  let spec = load_ok (scenarios_dir ^ "robustness_net.scn") in
  Alcotest.(check string) "name" "robustness-net" spec.Spec.name;
  Alcotest.(check string) "slug" "robustness_net" (Spec.slug spec);
  Alcotest.(check int) "two axes" 2 (List.length spec.Spec.axes);
  Alcotest.(check string) "pivot is protocol" "protocol"
    (Spec.pivot spec).Spec.axis_name;
  Alcotest.(check bool) "no app" true (spec.Spec.app = None);
  let spec = load_ok (scenarios_dir ^ "broadcast.scn") in
  Alcotest.(check string) "name" "broadcast" spec.Spec.name;
  Alcotest.(check int) "three axes" 3 (List.length spec.Spec.axes);
  Alcotest.(check bool) "mounts gossip" true (spec.Spec.app <> None);
  let spec = load_ok (scenarios_dir ^ "smoke.scn") in
  Alcotest.(check string) "name" "smoke" spec.Spec.name;
  Alcotest.(check (option (list int))) "explicit seeds" (Some [ 1; 2 ])
    spec.Spec.seeds

(* --- static expansion shape (no simulation runs) --- *)

let smoke_expansion () =
  let spec = load_ok (scenarios_dir ^ "smoke.scn") in
  let tasks = Matrix.tasks ~scale:Basalt_experiments.Scale.Quick spec in
  (* 2 conditions x 2 protocols x 2 seeds, seeds innermost. *)
  Alcotest.(check int) "task count" 8 (List.length tasks);
  let labels =
    List.map
      (fun t ->
        String.concat "/" (List.map snd t.Matrix.labels)
        ^ "#"
        ^ string_of_int t.Matrix.scenario.Basalt_sim.Scenario.seed)
      tasks
  in
  Alcotest.(check (list string)) "expansion order"
    [
      "clean/basalt#1";
      "clean/basalt#2";
      "clean/brahms#1";
      "clean/brahms#2";
      "lossy/basalt#1";
      "lossy/basalt#2";
      "lossy/brahms#1";
      "lossy/brahms#2";
    ]
    labels;
  (* Coordinates carry axis names in file order. *)
  let t0 = List.hd tasks in
  Alcotest.(check (list (pair string string)))
    "axis-name coordinates"
    [ ("condition", "clean"); ("protocol", "basalt") ]
    t0.Matrix.labels;
  (* Base bindings override the scale preset. *)
  Alcotest.(check int) "explicit n wins" 80
    t0.Matrix.scenario.Basalt_sim.Scenario.n;
  (* Trace tags come from the trace-key attributes, as strings here. *)
  Alcotest.(check bool) "trace tags" true
    (t0.Matrix.trace_extra
    = [ ("cond", Basalt_obs.Obs.Str "clean"); ("proto", Basalt_obs.Obs.Str "basalt") ])

let broadcast_expansion () =
  let spec = load_ok (scenarios_dir ^ "broadcast.scn") in
  let tasks = Matrix.tasks ~scale:Basalt_experiments.Scale.Quick spec in
  let seeds = List.length (Basalt_experiments.Scale.seeds Basalt_experiments.Scale.Quick) in
  (* 3 conditions x 2 forces x 4 protocols x preset seeds. *)
  Alcotest.(check int) "task count" (3 * 2 * 4 * seeds) (List.length tasks);
  (* The force axis is display-float: traces tag it as a float. *)
  let t0 = List.hd tasks in
  Alcotest.(check bool) "float trace tag" true
    (List.assoc "force" t0.Matrix.trace_extra = Basalt_obs.Obs.Float 1.0)

(* The per-cell scenarios resolve fault windows against the cell's own
   step count, as run fractions. *)
let fraction_windows_resolve () =
  let spec = load_ok (scenarios_dir ^ "robustness_net.scn") in
  let tasks = Matrix.tasks ~scale:Basalt_experiments.Scale.Quick spec in
  let partition_task =
    List.find
      (fun t -> List.assoc "condition" t.Matrix.labels = "partition")
      tasks
  in
  let sc = partition_task.Matrix.scenario in
  let steps = sc.Basalt_sim.Scenario.steps in
  match sc.Basalt_sim.Scenario.fault with
  | None -> Alcotest.fail "partition cell has no fault plan"
  | Some fault -> (
      match fault.Basalt_engine.Fault.partitions with
      | [ p ] ->
          Alcotest.(check (float 0.0)) "from = steps/4"
            (0.25 *. steps) p.Basalt_engine.Fault.from_time;
          Alcotest.(check (float 0.0)) "until = steps/2"
            (0.5 *. steps) p.Basalt_engine.Fault.until_time
      | ps ->
          Alcotest.failf "expected one partition, got %d" (List.length ps))

let () =
  let name, cases = sexp_suite in
  Alcotest.run "scenario"
    [
      (name, cases);
      ( "spec",
        [
          Alcotest.test_case "corpus diagnostics" `Quick corpus_diagnostics;
          Alcotest.test_case "corpus is exhaustive" `Quick corpus_is_exhaustive;
          Alcotest.test_case "missing file is unreadable" `Quick
            missing_file_is_unreadable;
          Alcotest.test_case "committed files load" `Quick committed_files_load;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "smoke expansion" `Quick smoke_expansion;
          Alcotest.test_case "broadcast expansion" `Quick broadcast_expansion;
          Alcotest.test_case "fraction windows resolve" `Quick
            fraction_windows_resolve;
        ] );
    ]
