(* Self-tests for lib/check: shrinking converges to minimal
   counterexamples, failures replay bit-identically from their seed, and
   the environment knobs (BASALT_CHECK_SEED / _COUNT / _DIR) behave. *)

module Check = Basalt_check.Check
module Gen = Check.Gen
module Print = Check.Print
module Rng = Basalt_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let run_expect_fail ?seed p =
  match Check.run ?seed ~suite:"self" p with
  | Check.Fail f -> f
  | Check.Pass _ -> Alcotest.failf "property %S passed unexpectedly" (Check.name p)

(* Temporarily override an environment variable ("" parses as unset for
   the integer knobs and disables the dump directory). *)
let with_env var value f =
  let old = Option.value (Sys.getenv_opt var) ~default:"" in
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var old) f

(* --- generators ----------------------------------------------------- *)

let gen_determinism () =
  let g =
    Gen.triple (Gen.int_range (-50) 50)
      (Gen.list ~max_len:10 (Gen.nat ~max:100))
      Gen.bool
  in
  let draw seed = Gen.generate g ~rng:(Rng.create ~seed) in
  check_bool "same seed, same value" true (draw 42 = draw 42);
  check_bool "draws depend on the seed" true
    (List.init 20 draw <> List.init 20 (fun s -> draw (s + 100)))

let gen_ranges () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 500 do
    let x = Gen.generate (Gen.int_range (-5) 3) ~rng in
    check_bool "int_range in bounds" true (x >= -5 && x <= 3);
    let l = Gen.generate (Gen.list ~min_len:2 ~max_len:5 (Gen.nat ~max:9)) ~rng in
    let n = List.length l in
    check_bool "list length in bounds" true (n >= 2 && n <= 5)
  done

let gen_full_int_range () =
  let rng = Rng.create ~seed:11 in
  let saw_negative = ref false in
  for _ = 1 to 200 do
    let x = Gen.generate (Gen.int_range min_int max_int) ~rng in
    if x < 0 then saw_negative := true;
    ignore x
  done;
  check_bool "full-range draw covers negatives" true !saw_negative

let gen_such_that () =
  let rng = Rng.create ~seed:3 in
  let even = Gen.such_that (fun x -> x mod 2 = 0) (Gen.nat ~max:100) in
  for _ = 1 to 100 do
    check_int "filtered" 0 (Gen.generate even ~rng mod 2)
  done;
  let impossible = Gen.such_that (fun _ -> false) (Gen.nat ~max:3) in
  check_bool "exhaustion raises" true
    (match Gen.generate impossible ~rng with
    | _ -> false
    | exception Gen.Generation_failure _ -> true)

let gen_frequency_weights () =
  let rng = Rng.create ~seed:9 in
  let g = Gen.frequency [ (9, Gen.return "common"); (1, Gen.return "rare") ] in
  let common = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    if Gen.generate g ~rng = "common" then incr common
  done;
  (* 9:1 weighting; a fair margin around the 1800 expectation. *)
  check_bool "weights respected" true (!common > 1600 && !common < 1950)

(* --- shrinking ------------------------------------------------------ *)

let shrink_int_to_boundary () =
  let p =
    Check.prop ~name:"ints below 10" ~print:Print.int (Gen.nat ~max:1000)
      (fun x -> x < 10)
  in
  let f = run_expect_fail p in
  check_string "minimal counterexample" "10" f.Check.counterexample;
  check_bool "shrinking did some work" true (f.Check.shrink_steps > 0)

let shrink_list_to_minimal () =
  let p =
    Check.prop ~name:"short lists" ~print:(Print.list Print.int)
      (Gen.list ~max_len:20 (Gen.nat ~max:100))
      (fun l -> List.length l < 3)
  in
  let f = run_expect_fail p in
  check_string "minimal counterexample" "[0; 0; 0]" f.Check.counterexample

let shrink_respects_invariants () =
  (* Shrinking a mapped generator must stay inside the generator's
     image: even values stay even while shrinking. *)
  let p =
    Check.prop ~name:"small evens" ~print:Print.int
      (Gen.map (fun x -> 2 * x) (Gen.nat ~max:1000))
      (fun x -> x < 20)
  in
  let f = run_expect_fail p in
  check_string "minimal even counterexample" "20" f.Check.counterexample

let shrink_pair_component_wise () =
  let p =
    Check.prop ~name:"pair bound" ~print:(Print.pair Print.int Print.int)
      (Gen.pair (Gen.nat ~max:100) (Gen.nat ~max:100))
      (fun (a, b) -> not (a >= 10 && b >= 10))
  in
  let f = run_expect_fail p in
  (* Each component shrinks to its own boundary independently. *)
  check_string "boundary pair" "(10, 10)" f.Check.counterexample

(* --- reproducibility ------------------------------------------------ *)

let failing_prop =
  Check.prop ~name:"replays" ~print:(Print.list Print.int)
    (Gen.list ~max_len:20 (Gen.nat ~max:1000))
    (fun l -> List.fold_left ( + ) 0 l < 800)

let failure_replays () =
  let f1 = run_expect_fail ~seed:123 failing_prop in
  let f2 = run_expect_fail ~seed:123 failing_prop in
  check_bool "identical failure record" true (f1 = f2);
  check_int "replay seed is the base seed" 123 f1.Check.seed;
  let f3 = run_expect_fail ~seed:321 failing_prop in
  check_bool "another seed, another case" true
    (f3.Check.seed <> f1.Check.seed)

let seed_env_respected () =
  with_env "BASALT_CHECK_SEED" "777" (fun () ->
      check_int "default_seed reads the env" 777 (Check.default_seed ());
      let f = run_expect_fail failing_prop in
      check_int "run uses it" 777 f.Check.seed);
  with_env "BASALT_CHECK_SEED" "" (fun () ->
      check_int "unset falls back" Check.default_seed_value
        (Check.default_seed ()))

let count_env_raises_budget () =
  (* The env raises budgets and never lowers them, in both normal and
     -q modes: a property pinned at the env value runs as many cases as
     one pinned lower. *)
  with_env "BASALT_CHECK_COUNT" "1000" (fun () ->
      check_int "raised to the env value" (Check.effective_count 1000)
        (Check.effective_count 100);
      check_bool "pinned budgets above the env still win" true
        (Check.effective_count 5000 > Check.effective_count 100))

let pass_reports_case_count () =
  let p =
    Check.prop ~name:"tautology" ~count:37 (Gen.nat ~max:5) (fun _ -> true)
  in
  match Check.run ~suite:"self" p with
  | Check.Pass n -> check_int "ran the effective budget" (Check.effective_count 37) n
  | Check.Fail f -> Alcotest.fail (Check.failure_report f)

let failure_dumped_to_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "basalt-check-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      with_env "BASALT_CHECK_DIR" dir (fun () ->
          let f = run_expect_fail ~seed:5 failing_prop in
          let expected = Printf.sprintf "self.replays.seed%d.txt" f.Check.seed in
          check_bool "artifact written" true
            (Sys.file_exists (Filename.concat dir expected))))

let report_mentions_replay () =
  let f = run_expect_fail ~seed:5 failing_prop in
  let report = Check.failure_report f in
  let contains needle =
    let nl = String.length needle and hl = String.length report in
    let rec go i =
      i + nl <= hl && (String.sub report i nl = needle || go (i + 1))
    in
    go 0
  in
  check_bool "names the property" true (contains "replays");
  check_bool "gives the seed" true (contains "BASALT_CHECK_SEED=5")

let generator_exception_is_failure () =
  let boom : int Gen.t =
    Gen.bind (Gen.nat ~max:3) (fun _ -> failwith "generator bug")
  in
  let p = Check.prop ~name:"boom" ~print:Print.int boom (fun _ -> true) in
  let f = run_expect_fail p in
  check_bool "reason carries the exception" true
    (String.length f.Check.reason > 0)

let () =
  Alcotest.run "check"
    [
      ( "generators",
        [
          Alcotest.test_case "determinism" `Quick gen_determinism;
          Alcotest.test_case "ranges" `Quick gen_ranges;
          Alcotest.test_case "full int range" `Quick gen_full_int_range;
          Alcotest.test_case "such_that" `Quick gen_such_that;
          Alcotest.test_case "frequency weights" `Quick gen_frequency_weights;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "int boundary" `Quick shrink_int_to_boundary;
          Alcotest.test_case "minimal list" `Quick shrink_list_to_minimal;
          Alcotest.test_case "respects invariants" `Quick
            shrink_respects_invariants;
          Alcotest.test_case "pairs component-wise" `Quick
            shrink_pair_component_wise;
        ] );
      ( "runner",
        [
          Alcotest.test_case "failures replay" `Quick failure_replays;
          Alcotest.test_case "seed env" `Quick seed_env_respected;
          Alcotest.test_case "count env" `Quick count_env_raises_budget;
          Alcotest.test_case "pass counts cases" `Quick pass_reports_case_count;
          Alcotest.test_case "failure artifacts" `Quick failure_dumped_to_dir;
          Alcotest.test_case "report replay line" `Quick report_mentions_replay;
          Alcotest.test_case "generator exceptions" `Quick
            generator_exception_is_failure;
        ] );
    ]
