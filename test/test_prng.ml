(* Tests for basalt.prng: SplitMix64, Xoshiro256++, Rng, Zipf. *)

open Basalt_prng

let check_i64 = Alcotest.(check int64)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- SplitMix64 --- *)

(* Published test vectors (JDK SplittableRandom / reference C, seed 0). *)
let splitmix_vectors () =
  let sm = Splitmix64.create 0L in
  check_i64 "first" 0xE220A8397B1DCDAFL (Splitmix64.next sm);
  check_i64 "second" 0x6E789E6AA1B965F4L (Splitmix64.next sm);
  check_i64 "third" 0x06C45D188009454FL (Splitmix64.next sm)

let splitmix_determinism () =
  let a = Splitmix64.create 12345L and b = Splitmix64.create 12345L in
  for _ = 1 to 100 do
    check_i64 "same stream" (Splitmix64.next a) (Splitmix64.next b)
  done

let splitmix_copy () =
  let a = Splitmix64.create 7L in
  ignore (Splitmix64.next a);
  let b = Splitmix64.copy a in
  check_i64 "copy continues identically" (Splitmix64.next a) (Splitmix64.next b)

let splitmix_mix_stateless () =
  check_i64 "mix deterministic" (Splitmix64.mix 42L) (Splitmix64.mix 42L);
  Alcotest.(check bool)
    "mix changes value" true
    (Splitmix64.mix 42L <> 42L)

(* --- Xoshiro256++ --- *)

let xoshiro_determinism () =
  let a = Xoshiro256.create 99L and b = Xoshiro256.create 99L in
  for _ = 1 to 100 do
    check_i64 "same stream" (Xoshiro256.next a) (Xoshiro256.next b)
  done

let xoshiro_seed_sensitivity () =
  let a = Xoshiro256.create 1L and b = Xoshiro256.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Xoshiro256.next a <> Xoshiro256.next b then differs := true
  done;
  check_bool "different seeds, different streams" true !differs

let xoshiro_zero_state_rejected () =
  Alcotest.check_raises "all-zero state"
    (Invalid_argument "Xoshiro256.of_state: all-zero state") (fun () ->
      ignore (Xoshiro256.of_state 0L 0L 0L 0L))

let xoshiro_copy_independent () =
  let a = Xoshiro256.create 5L in
  let b = Xoshiro256.copy a in
  check_i64 "copies aligned" (Xoshiro256.next a) (Xoshiro256.next b);
  ignore (Xoshiro256.next a);
  (* advancing [a] must not affect [b]'s next output *)
  let a' = Xoshiro256.next a and b' = Xoshiro256.next b in
  check_bool "desynchronised after extra draw" true (a' <> b')

(* --- Rng --- *)

let rng () = Rng.create ~seed:424242

let rng_int_bounds () =
  let t = rng () in
  for bound = 1 to 50 do
    for _ = 1 to 100 do
      let x = Rng.int t bound in
      check_bool "0 <= x" true (x >= 0);
      check_bool "x < bound" true (x < bound)
    done
  done

let rng_int_invalid () =
  let t = rng () in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int t 0))

let rng_int_covers_values () =
  let t = rng () in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    seen.(Rng.int t 10) <- true
  done;
  Array.iteri (fun i s -> check_bool (Printf.sprintf "value %d seen" i) true s) seen

let rng_int_roughly_uniform () =
  let t = rng () in
  let buckets = Array.make 8 0 in
  let draws = 80_000 in
  for _ = 1 to draws do
    let i = Rng.int t 8 in
    buckets.(i) <- buckets.(i) + 1
  done;
  let expected = draws / 8 in
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "bucket %d within 5%% (%d)" i c)
        true
        (abs (c - expected) < expected / 20))
    buckets

let rng_int_in_range () =
  let t = rng () in
  let lo_seen = ref false and hi_seen = ref false in
  for _ = 1 to 1000 do
    let x = Rng.int_in_range t ~lo:(-3) ~hi:3 in
    check_bool "in range" true (x >= -3 && x <= 3);
    if x = -3 then lo_seen := true;
    if x = 3 then hi_seen := true
  done;
  check_bool "lo endpoint reachable" true !lo_seen;
  check_bool "hi endpoint reachable" true !hi_seen

let rng_float_range () =
  let t = rng () in
  for _ = 1 to 1000 do
    let x = Rng.float t 2.5 in
    check_bool "0 <= x < 2.5" true (x >= 0.0 && x < 2.5)
  done

let rng_float_mean () =
  let t = rng () in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float t 1.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean ~ 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let rng_bool_fair () =
  let t = rng () in
  let trues = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bool t then incr trues
  done;
  check_bool "roughly fair" true (abs (!trues - (n / 2)) < n / 20)

let rng_bernoulli_extremes () =
  let t = rng () in
  for _ = 1 to 100 do
    check_bool "p=0 never" false (Rng.bernoulli t ~p:0.0);
    check_bool "p=1 always" true (Rng.bernoulli t ~p:1.0)
  done

let rng_pick () =
  let t = rng () in
  check_int "singleton" 7 (Rng.pick t [| 7 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick t [||]))

let rng_pick_list () =
  let t = rng () in
  check_int "singleton" 9 (Rng.pick_list t [ 9 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick_list: empty list")
    (fun () -> ignore (Rng.pick_list t []))

let rng_shuffle_preserves_multiset () =
  let t = rng () in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle_in_place t a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 100 Fun.id) sorted

let rng_shuffle_moves_things () =
  let t = rng () in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle_in_place t a;
  check_bool "not identity (overwhelmingly likely)" true
    (a <> Array.init 100 Fun.id)

let distinct_ints a =
  let seen = Hashtbl.create (Array.length a) in
  Array.for_all
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    a

let rng_sample_indices_dense () =
  let t = rng () in
  (* k close to n exercises the Fisher-Yates path *)
  let s = Rng.sample_indices t ~k:80 ~n:100 in
  check_int "size" 80 (Array.length s);
  check_bool "distinct" true (distinct_ints s);
  Array.iter (fun x -> check_bool "in range" true (x >= 0 && x < 100)) s

let rng_sample_indices_sparse () =
  let t = rng () in
  (* k << n exercises the hash-rejection path *)
  let s = Rng.sample_indices t ~k:10 ~n:100_000 in
  check_int "size" 10 (Array.length s);
  check_bool "distinct" true (distinct_ints s)

let rng_sample_indices_clamps () =
  let t = rng () in
  check_int "k > n clamps" 5 (Array.length (Rng.sample_indices t ~k:50 ~n:5));
  check_int "k = 0 empty" 0 (Array.length (Rng.sample_indices t ~k:0 ~n:5));
  check_int "n = 0 empty" 0 (Array.length (Rng.sample_indices t ~k:3 ~n:0))

let rng_sample_without_replacement () =
  let t = rng () in
  let a = [| "a"; "b"; "c"; "d"; "e" |] in
  let s = Rng.sample_without_replacement t ~k:3 a in
  check_int "size" 3 (Array.length s);
  Array.iter
    (fun x -> check_bool "member" true (Array.exists (String.equal x) a))
    s

let rng_exponential () =
  let t = rng () in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential t ~rate:2.0 in
    check_bool "positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean ~ 1/rate" true (Float.abs (mean -. 0.5) < 0.02)

let rng_geometric () =
  let t = rng () in
  check_int "p=1 is 0" 0 (Rng.geometric t ~p:1.0);
  let n = 50_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    let x = Rng.geometric t ~p:0.25 in
    check_bool "non-negative" true (x >= 0);
    sum := !sum + x
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* E = (1-p)/p = 3 *)
  check_bool "mean ~ 3" true (Float.abs (mean -. 3.0) < 0.1)

let rng_split_decorrelates () =
  let parent = rng () in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.int64 parent = Rng.int64 child then incr same
  done;
  check_int "streams disjoint" 0 !same

let rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 50 do
    check_i64 "same seed same stream" (Rng.int64 a) (Rng.int64 b)
  done

(* --- Zipf --- *)

let zipf_validation () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~s:1.0));
  Alcotest.check_raises "s<0"
    (Invalid_argument "Zipf.create: s must be non-negative") (fun () ->
      ignore (Zipf.create ~n:5 ~s:(-1.0)))

let zipf_probabilities_sum () =
  let z = Zipf.create ~n:50 ~s:1.2 in
  let total = ref 0.0 in
  for i = 0 to 49 do
    total := !total +. Zipf.probability z i
  done;
  check_bool "sums to 1" true (Float.abs (!total -. 1.0) < 1e-9)

let zipf_monotone () =
  let z = Zipf.create ~n:20 ~s:1.0 in
  for i = 0 to 18 do
    check_bool "decreasing" true
      (Zipf.probability z i >= Zipf.probability z (i + 1))
  done

let zipf_uniform_when_s0 () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  for i = 0 to 9 do
    check_bool "uniform" true (Float.abs (Zipf.probability z i -. 0.1) < 1e-9)
  done

let zipf_sample_range_and_skew () =
  let t = rng () in
  let z = Zipf.create ~n:100 ~s:1.5 in
  let first = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let x = Zipf.sample z t in
    check_bool "in range" true (x >= 0 && x < 100);
    if x = 0 then incr first
  done;
  let freq = float_of_int !first /. float_of_int n in
  let p0 = Zipf.probability z 0 in
  check_bool "rank-0 frequency matches" true (Float.abs (freq -. p0) < 0.02)

(* --- lib/check properties --- *)

module Check = Basalt_check.Check
module Gen = Check.Gen
module Print = Check.Print

let prop_int_in_bounds =
  Check.prop ~name:"Rng.int always within bounds" ~count:1000
    ~print:(Print.pair Print.int Print.int)
    Gen.(pair (nat ~max:10_000) (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Rng.create ~seed in
      let x = Rng.int t bound in
      x >= 0 && x < bound)

let prop_sample_indices_distinct =
  Check.prop ~name:"sample_indices always distinct" ~count:300
    ~print:(Print.triple Print.int Print.int Print.int)
    Gen.(triple (nat ~max:10_000) (nat ~max:200) (nat ~max:200))
    (fun (seed, k, n) ->
      let t = Rng.create ~seed in
      let s = Rng.sample_indices t ~k ~n in
      distinct_ints s && Array.length s = min k n)

let prop_shuffle_permutation =
  Check.prop ~name:"shuffle is a permutation" ~count:300
    ~print:(Print.pair Print.int (Print.list Print.int))
    Gen.(pair (nat ~max:10_000) (list ~max_len:40 (int_range (-1000) 1000)))
    (fun (seed, l) ->
      let t = Rng.create ~seed in
      let a = Array.of_list l in
      let before = List.sort Int.compare l in
      Rng.shuffle_in_place t a;
      List.sort Int.compare (Array.to_list a) = before)

(* Distribution sanity for the streams every generator in lib/check
   draws from: a chi-squared-style bound on bucket counts.  Uses a
   pinned per-case seed, so the statistic is exact and deterministic. *)
let prop_int_buckets_balanced =
  Check.prop ~name:"Rng.int buckets roughly balanced" ~count:20
    ~print:(Print.pair Print.int Print.int)
    Gen.(pair (nat ~max:10_000) (int_range 2 16))
    (fun (seed, buckets) ->
      let t = Rng.create ~seed:(seed + 7919) in
      let draws = 4000 in
      let counts = Array.make buckets 0 in
      for _ = 1 to draws do
        let x = Rng.int t buckets in
        counts.(x) <- counts.(x) + 1
      done;
      let expected = float_of_int draws /. float_of_int buckets in
      Array.for_all
        (fun c ->
          let d = Float.abs (float_of_int c -. expected) in
          (* 6 sigma for a binomial bucket: far beyond test flakiness,
             still catches a broken generator instantly. *)
          d < 6.0 *. sqrt expected)
        counts)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "reference vectors" `Quick splitmix_vectors;
          Alcotest.test_case "determinism" `Quick splitmix_determinism;
          Alcotest.test_case "copy" `Quick splitmix_copy;
          Alcotest.test_case "mix stateless" `Quick splitmix_mix_stateless;
        ] );
      ( "xoshiro256",
        [
          Alcotest.test_case "determinism" `Quick xoshiro_determinism;
          Alcotest.test_case "seed sensitivity" `Quick xoshiro_seed_sensitivity;
          Alcotest.test_case "zero state rejected" `Quick
            xoshiro_zero_state_rejected;
          Alcotest.test_case "copy independence" `Quick xoshiro_copy_independent;
        ] );
      ( "rng",
        [
          Alcotest.test_case "int bounds" `Quick rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick rng_int_invalid;
          Alcotest.test_case "int covers values" `Quick rng_int_covers_values;
          Alcotest.test_case "int uniformity" `Slow rng_int_roughly_uniform;
          Alcotest.test_case "int_in_range" `Quick rng_int_in_range;
          Alcotest.test_case "float range" `Quick rng_float_range;
          Alcotest.test_case "float mean" `Slow rng_float_mean;
          Alcotest.test_case "bool fair" `Slow rng_bool_fair;
          Alcotest.test_case "bernoulli extremes" `Quick rng_bernoulli_extremes;
          Alcotest.test_case "pick" `Quick rng_pick;
          Alcotest.test_case "pick_list" `Quick rng_pick_list;
          Alcotest.test_case "shuffle multiset" `Quick
            rng_shuffle_preserves_multiset;
          Alcotest.test_case "shuffle moves" `Quick rng_shuffle_moves_things;
          Alcotest.test_case "sample dense" `Quick rng_sample_indices_dense;
          Alcotest.test_case "sample sparse" `Quick rng_sample_indices_sparse;
          Alcotest.test_case "sample clamps" `Quick rng_sample_indices_clamps;
          Alcotest.test_case "sample w/o replacement" `Quick
            rng_sample_without_replacement;
          Alcotest.test_case "exponential" `Slow rng_exponential;
          Alcotest.test_case "geometric" `Slow rng_geometric;
          Alcotest.test_case "split decorrelates" `Quick rng_split_decorrelates;
          Alcotest.test_case "determinism" `Quick rng_determinism;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "validation" `Quick zipf_validation;
          Alcotest.test_case "probabilities sum" `Quick zipf_probabilities_sum;
          Alcotest.test_case "monotone" `Quick zipf_monotone;
          Alcotest.test_case "uniform when s=0" `Quick zipf_uniform_when_s0;
          Alcotest.test_case "sample range and skew" `Slow
            zipf_sample_range_and_skew;
        ] );
      Check.suite "properties"
        [
          prop_int_in_bounds;
          prop_sample_indices_distinct;
          prop_shuffle_permutation;
          prop_int_buckets_balanced;
        ];
    ]
