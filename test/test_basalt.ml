(* Tests for basalt.core: config, slots, the Basalt algorithm, streams. *)

open Basalt_core
module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module Rank = Basalt_hashing.Rank

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let id = Node_id.of_int
let rng () = Basalt_prng.Rng.create ~seed:1234

(* --- Config --- *)

let config_defaults () =
  let c = Config.default in
  check_int "v" 160 c.Config.v;
  check_int "k = v/2" 80 c.Config.k;
  Alcotest.(check (float 1e-9)) "tau" 1.0 c.Config.tau;
  Alcotest.(check (float 1e-9)) "rho" 1.0 c.Config.rho;
  check_bool "exclude_self" true c.Config.exclude_self

let config_validation () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Config.make: v must be positive" (fun () ->
      ignore (Config.make ~v:0 ()));
  expect "Config.make: k must be in [1, v]" (fun () ->
      ignore (Config.make ~v:10 ~k:11 ()));
  expect "Config.make: k must be in [1, v]" (fun () ->
      ignore (Config.make ~v:10 ~k:0 ()));
  expect "Config.make: tau must be positive" (fun () ->
      ignore (Config.make ~tau:0.0 ()));
  expect "Config.make: rho must be positive" (fun () ->
      ignore (Config.make ~rho:(-1.0) ()))

let config_intervals () =
  let c = Config.make ~v:100 ~k:50 ~rho:2.0 () in
  Alcotest.(check (float 1e-9)) "refresh = k/rho" 25.0 (Config.refresh_interval c);
  Alcotest.(check (float 1e-9)) "lifetime = v/rho" 50.0 (Config.slot_lifetime c)

let config_equilibrium () =
  let c = Config.make ~v:160 () in
  check_bool "paper base has equilibrium" true
    (Config.equilibrium_exists c ~n:10_000 ~f:0.1);
  let tiny = Config.make ~v:10 () in
  check_bool "tiny view has none" false
    (Config.equilibrium_exists tiny ~n:10_000 ~f:0.1)

(* --- Slot --- *)

let slot_empty () =
  let s = Slot.create Rank.Cheap (rng ()) in
  check_bool "starts empty" true (Slot.peer s = None);
  check_bool "no rank" true (Slot.best_rank s = None)

let slot_offer_fills () =
  let s = Slot.create Rank.Cheap (rng ()) in
  check_bool "first offer accepted" true (Slot.offer s (id 3));
  check_bool "filled" true (Slot.peer s = Some (id 3))

let slot_keeps_minimum () =
  let s = Slot.create Rank.Cheap (rng ()) in
  (* Offer many candidates; the slot must end up holding the argmin of
     the rank function over all offered ids. *)
  for i = 0 to 99 do
    ignore (Slot.offer s (id i))
  done;
  let seed = Slot.seed s in
  let best = ref 0 in
  for i = 1 to 99 do
    if Rank.rank seed i < Rank.rank seed !best then best := i
  done;
  check_bool "holds global argmin" true (Slot.peer s = Some (id !best))

let slot_rejects_worse () =
  let s = Slot.create Rank.Cheap (rng ()) in
  for i = 0 to 99 do
    ignore (Slot.offer s (id i))
  done;
  let held = Slot.peer s in
  (* Re-offering everything cannot change the held peer. *)
  let changed = ref false in
  for i = 0 to 99 do
    if Slot.offer s (id i) then changed := true
  done;
  check_bool "idempotent" false !changed;
  check_bool "same peer" true (Slot.peer s = held)

let slot_reset () =
  let r = rng () in
  let s = Slot.create Rank.Cheap r in
  ignore (Slot.offer s (id 1));
  Slot.reset Rank.Cheap r s;
  check_bool "cleared" true (Slot.peer s = None)

let slot_offer_prepared_agrees () =
  let r = rng () in
  let s1 = Slot.create Rank.Cheap r in
  for i = 0 to 49 do
    let p = Rank.prepare Rank.Cheap i in
    let direct = Slot.create Rank.Cheap r in
    ignore direct;
    ignore (Slot.offer_prepared s1 (id i) p)
  done;
  (* replay with plain offer on a slot with the same seed *)
  let s2 = Slot.create Rank.Cheap r in
  ignore s2;
  (* Equivalent check: prepared ranks equal direct ranks for the held
     peer. *)
  match (Slot.peer s1, Slot.best_rank s1) with
  | Some p, Some rank ->
      check_int "cached rank is the true rank" rank
        (Rank.rank (Slot.seed s1) (Node_id.to_int p))
  | _ -> Alcotest.fail "slot should be filled"

(* --- Basalt --- *)

let capture_send () =
  let sent = ref [] in
  let send ~dst msg = sent := (dst, msg) :: !sent in
  (sent, send)

let make_basalt ?(v = 8) ?(k = 2) ?(bootstrap = Array.init 5 (fun i -> id (i + 1)))
    () =
  let _, send = capture_send () in
  Basalt.create
    ~config:(Config.make ~v ~k ())
    ~id:(id 0) ~bootstrap ~rng:(rng ()) ~send ()

let basalt_bootstrap_fills_view () =
  let t = make_basalt () in
  let view = Basalt.view t in
  check_int "all slots filled" 8 (Array.length view);
  Array.iter
    (fun p ->
      check_bool "view entry from bootstrap" true
        (Node_id.to_int p >= 1 && Node_id.to_int p <= 5))
    view

let basalt_empty_bootstrap () =
  let t = make_basalt ~bootstrap:[||] () in
  check_int "empty view" 0 (Array.length (Basalt.view t));
  check_bool "no peer" true (Basalt.select_peer t = None);
  (* on_round with empty view must not crash or send *)
  Basalt.on_round t

let basalt_excludes_self () =
  let t = make_basalt ~bootstrap:[| id 0; id 0; id 3 |] () in
  Array.iter
    (fun p -> check_bool "self never in view" false (Node_id.equal p (id 0)))
    (Basalt.view t)

let basalt_update_sample_converges () =
  let t = make_basalt ~v:16 () in
  Basalt.update_sample t (Array.init 200 id);
  (* Every slot must now hold the argmin over all non-self ids. *)
  Array.iteri
    (fun _ slot_peer ->
      match slot_peer with
      | Some _ -> ()
      | None -> Alcotest.fail "slot empty after mass update")
    (Basalt.view_slots t);
  (* Feeding again changes nothing (stubbornness). *)
  let before = Basalt.view t in
  Basalt.update_sample t (Array.init 200 id);
  Alcotest.(check (array int))
    "stubborn"
    (Array.map Node_id.to_int before)
    (Array.map Node_id.to_int (Basalt.view t))

let basalt_select_peer_member () =
  let t = make_basalt () in
  match Basalt.select_peer t with
  | Some p ->
      check_bool "selected from view" true
        (Basalt_proto.View_ops.contains (Basalt.view t) p)
  | None -> Alcotest.fail "view non-empty"

let basalt_on_round_sends () =
  let sent, send = capture_send () in
  let t =
    Basalt.create
      ~config:(Config.make ~v:8 ~k:2 ())
      ~id:(id 0)
      ~bootstrap:(Array.init 5 (fun i -> id (i + 1)))
      ~rng:(rng ()) ~send ()
  in
  Basalt.on_round t;
  check_int "two messages per round" 2 (List.length !sent);
  let kinds = List.map (fun (_, m) -> Message.kind m) !sent in
  check_bool "one push" true (List.mem "push" kinds);
  check_bool "one pull" true (List.mem "pull" kinds);
  check_int "rounds counted" 1 (Basalt.rounds_executed t)

let basalt_pull_answered () =
  let sent, send = capture_send () in
  let t =
    Basalt.create
      ~config:(Config.make ~v:4 ())
      ~id:(id 0)
      ~bootstrap:[| id 1; id 2 |]
      ~rng:(rng ()) ~send ()
  in
  Basalt.on_message t ~from:(id 9) Message.Pull_request;
  match !sent with
  | [ (dst, Message.Pull_reply view) ] ->
      check_int "reply to requester" 9 (Node_id.to_int dst);
      check_bool "reply carries view" true (Array.length view > 0)
  | _ -> Alcotest.fail "expected exactly one pull reply"

let basalt_push_includes_sender () =
  let t = make_basalt ~v:64 ~bootstrap:[| id 1 |] () in
  (* A push from node 7 carrying nothing new: sender itself must be
     considered (Alg. 1 line 13). *)
  Basalt.on_message t ~from:(id 7) (Message.Push [||]);
  check_bool "sender entered some slot" true
    (Basalt_proto.View_ops.contains (Basalt.view t) (id 7))

let basalt_sample_tick_emits () =
  let t = make_basalt ~v:8 ~k:3 () in
  let samples = Basalt.sample_tick t in
  check_int "k samples when slots filled" 3 (List.length samples);
  check_int "counter" 3 (Basalt.samples_emitted t);
  (* After the tick the view is still full: line 19 re-offered the
     snapshot to the reset slots. *)
  check_int "view refilled" 8 (Array.length (Basalt.view t))

let basalt_sample_tick_round_robin () =
  let t = make_basalt ~v:4 ~k:4 () in
  (* k = v: every slot sampled exactly once per tick. *)
  let s1 = Basalt.sample_tick t in
  check_int "v samples" 4 (List.length s1);
  let s2 = Basalt.sample_tick t in
  check_int "again v samples" 4 (List.length s2)

let basalt_sample_tick_empty_slots () =
  let t = make_basalt ~v:4 ~k:2 ~bootstrap:[||] () in
  check_bool "no samples from empty view" true (Basalt.sample_tick t = [])

let basalt_sampler_interface () =
  let maker = Basalt.sampler ~config:(Config.make ~v:8 ()) () in
  let sent = ref 0 in
  let s =
    maker ~id:(id 0)
      ~bootstrap:(Array.init 4 (fun i -> id (i + 1)))
      ~rng:(rng ())
      ~send:(fun ~dst:_ _ -> incr sent)
  in
  Alcotest.(check string) "protocol name" "basalt" s.Basalt_proto.Rps.protocol;
  s.Basalt_proto.Rps.on_round ();
  check_int "round sends" 2 !sent;
  check_bool "view non-empty" true
    (Array.length (s.Basalt_proto.Rps.current_view ()) > 0)

(* Stubbornness against flooding: a slot can only be displaced by an id
   that genuinely ranks lower, so repeated floods of the SAME malicious
   ids cannot increase their representation (the paper's core claim). *)
let basalt_flood_resistance () =
  let t = make_basalt ~v:64 ~bootstrap:(Array.init 50 (fun i -> id (i + 1))) () in
  let flood = Array.init 10 (fun i -> id (1000 + i)) in
  Basalt.update_sample t flood;
  let count_flood () =
    Basalt_proto.View_ops.count
      (fun p -> Node_id.to_int p >= 1000)
      (Basalt.view t)
  in
  let after_once = count_flood () in
  for _ = 1 to 100 do
    Basalt.update_sample t flood
  done;
  check_int "flooding again gains nothing" after_once (count_flood ())

let basalt_least_used_balances () =
  let _, send = capture_send () in
  let t =
    Basalt.create
      ~config:(Config.make ~v:8 ~k:2 ~select:Config.Least_used_slot ())
      ~id:(id 0)
      ~bootstrap:(Array.init 20 (fun i -> id (i + 1)))
      ~rng:(rng ()) ~send ()
  in
  (* Selecting v times must visit v distinct slots (each selection
     increments the chosen slot's counter, pushing it to the back). *)
  let slots = Basalt.view_slots t in
  let picks = List.init (Array.length slots) (fun _ -> Basalt.select_peer t) in
  let ids =
    List.filter_map (Option.map Basalt_proto.Node_id.to_int) picks
  in
  check_int "every selection succeeded" (Array.length slots) (List.length ids);
  (* The multiset of picks equals the multiset of slot peers: each slot
     used exactly once before any is reused. *)
  let slot_ids =
    Array.to_list slots
    |> List.filter_map (Option.map Basalt_proto.Node_id.to_int)
    |> List.sort Int.compare
  in
  Alcotest.(check (list int))
    "round of selections covers all slots exactly once" slot_ids
    (List.sort Int.compare ids)

let basalt_least_used_empty () =
  let _, send = capture_send () in
  let t =
    Basalt.create
      ~config:(Config.make ~v:4 ~select:Config.Least_used_slot ())
      ~id:(id 0) ~bootstrap:[||] ~rng:(rng ()) ~send ()
  in
  check_bool "no peer from empty view" true (Basalt.select_peer t = None)

let basalt_push_payload_ablation () =
  let sent, send = capture_send () in
  let t =
    Basalt.create
      ~config:(Config.make ~v:8 ~k:2 ~push_own_id_only:true ())
      ~id:(id 0)
      ~bootstrap:(Array.init 5 (fun i -> id (i + 1)))
      ~rng:(rng ()) ~send ()
  in
  Basalt.on_round t;
  let kinds = List.map (fun (_, m) -> Message.kind m) !sent in
  check_bool "push carries only the sender id" true (List.mem "push-id" kinds);
  check_bool "no full-view push" false (List.mem "push" kinds);
  (* the Push_id must carry the local id *)
  List.iter
    (fun (_, m) ->
      match m with
      | Message.Push_id p -> check_int "own id" 0 (Node_id.to_int p)
      | _ -> ())
    !sent

(* --- Dead-peer eviction --- *)

let eviction_config = Config.make ~v:8 ~k:2 ~evict_after_rounds:2 ()

let eviction_validation () =
  Alcotest.check_raises "non-positive limit"
    (Invalid_argument "Config.make: evict_after_rounds must be positive")
    (fun () -> ignore (Config.make ~evict_after_rounds:0 ()))

let eviction_sheds_silent_peers () =
  let _, send = capture_send () in
  let t =
    Basalt.create ~config:eviction_config ~id:(id 0)
      ~bootstrap:[| id 1; id 2; id 3 |]
      ~rng:(rng ()) ~send ()
  in
  (* Nobody ever answers: after enough rounds every pulled peer gets
     evicted and, since no new candidates arrive, the view drains. *)
  for _ = 1 to 60 do
    Basalt.on_round t
  done;
  check_bool "evictions happened" true (Basalt.evictions t > 0);
  check_int "view fully drained" 0 (Array.length (Basalt.view t))

let eviction_spares_responsive_peers () =
  let t_ref = ref None in
  (* Peers answer every pull instantly. *)
  let send ~dst msg =
    match (msg, !t_ref) with
    | Basalt_proto.Message.Pull_request, Some t ->
        Basalt.on_message t ~from:dst (Basalt_proto.Message.Push [| dst |])
    | _ -> ()
  in
  let t =
    Basalt.create ~config:eviction_config ~id:(id 0)
      ~bootstrap:[| id 1; id 2; id 3 |]
      ~rng:(rng ()) ~send ()
  in
  t_ref := Some t;
  for _ = 1 to 60 do
    Basalt.on_round t
  done;
  check_int "no evictions for live peers" 0 (Basalt.evictions t);
  check_bool "view retained" true (Array.length (Basalt.view t) > 0)

let eviction_disabled_by_default () =
  let _, send = capture_send () in
  let t =
    Basalt.create
      ~config:(Config.make ~v:8 ~k:2 ())
      ~id:(id 0)
      ~bootstrap:[| id 1 |]
      ~rng:(rng ()) ~send ()
  in
  for _ = 1 to 60 do
    Basalt.on_round t
  done;
  check_int "no evictions" 0 (Basalt.evictions t);
  check_bool "silent peers kept (stubbornness)" true
    (Array.length (Basalt.view t) > 0)

let eviction_order_is_deterministic () =
  (* Regression: a mass eviction used to process peers in [Hashtbl.fold]
     order, which depends on probe *insertion* order; since every slot
     reset consumes PRNG draws, two nodes with identical state but
     different probe histories diverged.  Eviction must be a function of
     the probe *set*, not its insertion order. *)
  let node () =
    let _, send = capture_send () in
    Basalt.create ~config:eviction_config ~id:(id 0)
      ~bootstrap:(Array.init 20 (fun i -> id (i + 1)))
      ~rng:(rng ()) ~send ()
  in
  let peers = List.init 12 (fun i -> i + 1) in
  let run order =
    let t = node () in
    List.iter (fun p -> Basalt.record_probe t (id p)) order;
    (* Three silent rounds push every probe past the limit of 2. *)
    for _ = 1 to 3 do
      Basalt.on_round t
    done;
    t
  in
  let asc = run peers in
  let desc = run (List.rev peers) in
  check_bool "evictions fired" true (Basalt.evictions asc > 0);
  check_int "same eviction count" (Basalt.evictions asc)
    (Basalt.evictions desc);
  Alcotest.(check (array int))
    "identical views regardless of probe insertion order"
    (Array.map Node_id.to_int (Basalt.view asc))
    (Array.map Node_id.to_int (Basalt.view desc))

let probe_cleared_on_any_traffic () =
  (* Any message from a probed peer — here a bare PULL — must clear its
     pending probe, sparing it from the next eviction pass. *)
  let _, send = capture_send () in
  let t =
    Basalt.create
      ~config:(Config.make ~v:8 ~k:2 ~evict_after_rounds:100 ())
      ~id:(id 0)
      ~bootstrap:[| id 1; id 2; id 3 |]
      ~rng:(rng ()) ~send ()
  in
  Basalt.record_probe t (id 1);
  Basalt.record_probe t (id 2);
  Basalt.on_round t;
  Basalt.on_message t ~from:(id 1) Message.Pull_request;
  Basalt.run_eviction t ~limit:0;
  let view = Array.map Node_id.to_int (Basalt.view t) in
  check_bool "unanswered probe evicted" false (Array.mem 2 view);
  check_bool "answering peer survives" true (Array.mem 1 view)

let probe_recorded_before_send () =
  (* The probe is registered before the PULL leaves the node, so even a
     same-instant reply finds (and clears) it — no lost-wakeup window. *)
  let t_ref = ref None in
  let probe_was_pending = ref false in
  let send ~dst msg =
    match (msg, !t_ref) with
    | Basalt_proto.Message.Pull_request, Some t ->
        (* Evicting with limit -1 expires every pending probe, including
           one recorded in the current round: the pulled peer vanishes
           from the view exactly when its probe was already registered. *)
        let before = Array.mem dst (Basalt.view t) in
        Basalt.run_eviction t ~limit:(-1);
        let after = Array.mem dst (Basalt.view t) in
        if before && not after then probe_was_pending := true
    | _ -> ()
  in
  let t =
    Basalt.create ~config:eviction_config ~id:(id 0)
      ~bootstrap:[| id 1; id 2; id 3 |]
      ~rng:(rng ()) ~send ()
  in
  t_ref := Some t;
  Basalt.on_round t;
  check_bool "probe visible at send time" true !probe_was_pending

let eviction_resets_slots_and_reoffers () =
  let _, send = capture_send () in
  let t =
    Basalt.create
      ~config:(Config.make ~v:8 ~k:2 ~evict_after_rounds:100 ())
      ~id:(id 0)
      ~bootstrap:[| id 1; id 2 |]
      ~rng:(rng ()) ~send ()
  in
  let held_by_victim =
    Array.fold_left
      (fun acc slot -> if slot = Some (id 2) then acc + 1 else acc)
      0 (Basalt.view_slots t)
  in
  check_bool "victim held some slots" true (held_by_victim > 0);
  Basalt.record_probe t (id 2);
  Basalt.on_round t;
  Basalt.run_eviction t ~limit:0;
  check_int "one reset per held slot" held_by_victim (Basalt.evictions t);
  let view = Array.map Node_id.to_int (Basalt.view t) in
  check_bool "victim gone" false (Array.mem 2 view);
  (* The pre-eviction view minus the victim was re-offered, so the freed
     slots converge back to the survivor instead of staying empty. *)
  check_int "every slot refilled from the snapshot" 8 (Array.length view);
  check_bool "survivor everywhere" true (Array.for_all (Int.equal 1) view)

(* --- Sample_stream --- *)

let stream_basics () =
  let s = Sample_stream.create ~capacity:3 in
  check_int "empty" 0 (Sample_stream.retained s);
  Sample_stream.push s (id 1);
  Sample_stream.push s (id 2);
  check_int "two retained" 2 (Sample_stream.retained s);
  check_int "total" 2 (Sample_stream.total s)

let stream_eviction () =
  let s = Sample_stream.create ~capacity:3 in
  List.iter (Sample_stream.push s) [ id 1; id 2; id 3; id 4 ];
  check_int "capped" 3 (Sample_stream.retained s);
  check_int "total keeps counting" 4 (Sample_stream.total s);
  Alcotest.(check (list int))
    "newest first, oldest evicted" [ 4; 3; 2 ]
    (List.map Node_id.to_int (Sample_stream.recent s 5))

let stream_proportion () =
  let s = Sample_stream.create ~capacity:10 in
  List.iter (Sample_stream.push s) [ id 1; id 2; id 3; id 4 ];
  Alcotest.(check (float 1e-9)) "proportion" 0.5
    (Sample_stream.proportion (fun x -> Node_id.to_int x mod 2 = 0) s);
  Alcotest.(check (float 1e-9)) "empty stream" 0.0
    (Sample_stream.proportion (fun _ -> true) (Sample_stream.create ~capacity:4))

let stream_iter_order () =
  let s = Sample_stream.create ~capacity:3 in
  List.iter (Sample_stream.push s) [ id 1; id 2; id 3; id 4 ];
  let seen = ref [] in
  Sample_stream.iter (fun x -> seen := Node_id.to_int x :: !seen) s;
  Alcotest.(check (list int)) "oldest first" [ 4; 3; 2 ] !seen

let stream_draw () =
  let s = Sample_stream.create ~capacity:8 in
  check_int "draw from empty" 0
    (Array.length (Sample_stream.draw s (rng ()) ~k:5));
  List.iter (Sample_stream.push s) [ id 1; id 2; id 3 ];
  let d = Sample_stream.draw s (rng ()) ~k:10 in
  check_int "draws k with replacement" 10 (Array.length d);
  Array.iter
    (fun x ->
      check_bool "drawn from retained" true
        (List.mem (Node_id.to_int x) [ 1; 2; 3 ]))
    d

let stream_invalid () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Sample_stream.create: capacity <= 0") (fun () ->
      ignore (Sample_stream.create ~capacity:0))

module Check = Basalt_check.Check
module Gen = Check.Gen
module Print = Check.Print

(* Model-based test: the ring buffer must behave exactly like an
   unbounded list truncated to the last [capacity] elements. *)
let prop_stream_model =
  Check.prop ~name:"sample stream matches list reference" ~count:300
    ~print:(Print.pair Print.int (Print.list Print.int))
    (Gen.pair (Gen.int_range 1 8) (Gen.list ~max_len:40 (Gen.nat ~max:100)))
    (fun (capacity, pushes) ->
      let s = Sample_stream.create ~capacity in
      let reference = ref [] in
      List.iter
        (fun x ->
          Sample_stream.push s (Node_id.of_int x);
          reference := x :: !reference)
        pushes;
      let expected_window =
        List.filteri (fun i _ -> i < capacity) !reference
      in
      let got =
        List.map Node_id.to_int (Sample_stream.recent s capacity)
      in
      got = expected_window
      && Sample_stream.total s = List.length pushes
      && Sample_stream.retained s = List.length expected_window)

let seed_and_ids =
  Gen.pair (Gen.nat ~max:10_000)
    (Gen.list ~min_len:1 ~max_len:30 (Gen.nat ~max:100))

let print_seed_ids = Print.pair Print.int (Print.list Print.int)

let make_node ?(v = 8) seed =
  let send ~dst:_ _ = () in
  Basalt.create
    ~config:(Config.make ~v ())
    ~id:(Node_id.of_int 0) ~bootstrap:[||]
    ~rng:(Basalt_prng.Rng.create ~seed)
    ~send ()

let prop_view_subset_of_fed =
  Check.prop ~name:"view is a subset of fed identifiers" ~count:200
    ~print:print_seed_ids seed_and_ids
    (fun (seed, ids) ->
      let t = make_node seed in
      let fed = Array.of_list (List.map (fun i -> Node_id.of_int (i + 1)) ids) in
      Basalt.update_sample t fed;
      Array.for_all (Basalt_proto.View_ops.contains fed) (Basalt.view t))

(* Differential oracle for the hot path: every slot must hold exactly
   the argmin of its rank function over all offered identifiers (the
   oblivious reference model of Alg. 1 lines 20-23). *)
let prop_slot_argmin =
  Check.prop ~name:"slot holds the argmin-rank identifier" ~count:300
    ~print:print_seed_ids seed_and_ids
    (fun (seed, ids) ->
      let s = Slot.create Rank.Cheap (Basalt_prng.Rng.create ~seed) in
      List.iter (fun i -> ignore (Slot.offer s (id i))) ids;
      let rank i = Rank.rank (Slot.seed s) i in
      let best = List.fold_left (fun acc i -> min acc (rank i)) max_int ids in
      match (Slot.peer s, Slot.best_rank s) with
      | Some p, Some r -> rank (Node_id.to_int p) = best && r = best
      | _ -> false)

(* Feeding a batch is the same as feeding it in two pieces: update_sample
   draws no randomness, so same-seed instances stay comparable. *)
let prop_update_sample_batch_split =
  Check.prop ~name:"update_sample batches = sequential feeds" ~count:200
    ~print:(Print.triple Print.int (Print.list Print.int) Print.int)
    (Gen.triple (Gen.nat ~max:10_000)
       (Gen.list ~min_len:1 ~max_len:30 (Gen.nat ~max:100))
       (Gen.nat ~max:30))
    (fun (seed, ids, cut) ->
      let cut = cut mod (List.length ids + 1) in
      let all = Array.of_list (List.map (fun i -> Node_id.of_int (i + 1)) ids) in
      let whole = make_node seed in
      Basalt.update_sample whole all;
      let split = make_node seed in
      Basalt.update_sample split (Array.sub all 0 cut);
      Basalt.update_sample split
        (Array.sub all cut (Array.length all - cut));
      Basalt.view whole = Basalt.view split)

(* Eviction safety: a peer that sent us anything within the last [limit]
   rounds can never be evicted — its probe (if any) was cleared by that
   traffic, and any newer probe is younger than [limit].  Ops interleave
   silent protocol rounds with spontaneous traffic from a small peer
   pool; since every identifier ever fed was offered to every slot, the
   view only ever shrinks through eviction, so a recently-heard peer
   missing from the view is exactly an eviction-safety violation. *)
let prop_eviction_spares_recent_peers =
  let limit = 2 in
  let print_ops =
    Print.list (fun op -> if op = 0 then "round" else Printf.sprintf "hear(%d)" op)
  in
  Check.prop ~name:"eviction never evicts a peer heard within the limit"
    ~count:200
    ~print:(Print.pair Print.int print_ops)
    (Gen.pair (Gen.nat ~max:10_000)
       (Gen.list ~min_len:1 ~max_len:60 (Gen.nat ~max:6)))
    (fun (seed, ops) ->
      let send ~dst:_ _ = () in
      let t =
        Basalt.create
          ~config:(Config.make ~v:6 ~k:2 ~evict_after_rounds:limit ())
          ~id:(Node_id.of_int 0)
          ~bootstrap:(Array.init 6 (fun i -> Node_id.of_int (i + 1)))
          ~rng:(Basalt_prng.Rng.create ~seed)
          ~send ()
      in
      let last_heard = Hashtbl.create 8 in
      let ok = ref true in
      List.iter
        (fun op ->
          if op = 0 then begin
            let before = Basalt.view t in
            Basalt.on_round t;
            let after = Basalt.view t in
            let rounds = Basalt.rounds_executed t in
            Array.iter
              (fun p ->
                match Hashtbl.find_opt last_heard (Node_id.to_int p) with
                | Some heard when rounds - heard <= limit ->
                    if not (Array.exists (Node_id.equal p) after) then
                      ok := false
                | Some _ | None -> ())
              before
          end
          else begin
            let p = Node_id.of_int op in
            Basalt.on_message t ~from:p (Message.Push_id p);
            Hashtbl.replace last_heard op (Basalt.rounds_executed t)
          end)
        ops;
      !ok)

(* Differential rank oracle: a naive reference model of Alg. 1 that
   evaluates one rank per (slot, candidate) pair with no dedup, no
   candidate digests and no seen-cache — exactly the code the batched
   [Basalt.update_sample] replaced.  The model mirrors the node's PRNG
   usage ([create] splits the master stream and draws one seed per slot;
   each [sample_tick] reset draws one more), so a same-seeded node and
   model hold identical slot seeds at every step and must agree on every
   holder and every best rank, bit for bit. *)
module Rank_oracle = struct
  type slot = {
    mutable seed : Rank.seed;
    mutable holder : int option;
    mutable best : int;
  }

  type t = {
    slots : slot array;
    rng : Basalt_prng.Rng.t;
    backend : Rank.backend;
    self : int;
    mutable next_reset : int;
  }

  let create ~backend ~v ~self ~seed =
    let master = Basalt_prng.Rng.create ~seed in
    let rng = Basalt_prng.Rng.split master in
    let slots =
      Array.init v (fun _ ->
          { seed = Rank.fresh backend rng; holder = None; best = max_int })
    in
    { slots; rng; backend; self; next_reset = 0 }

  let offer t ids =
    Array.iter
      (fun id ->
        let id = Node_id.to_int id in
        if id <> t.self then
          Array.iter
            (fun s ->
              let r = Rank.rank s.seed id in
              if s.holder = None || r < s.best then begin
                s.holder <- Some id;
                s.best <- r
              end)
            t.slots)
      ids

  let tick t ~k =
    let snapshot =
      Array.of_list
        (List.filter_map
           (fun s -> Option.map Node_id.of_int s.holder)
           (Array.to_list t.slots))
    in
    for _ = 1 to k do
      let s = t.slots.(t.next_reset) in
      t.next_reset <- (t.next_reset + 1) mod Array.length t.slots;
      s.seed <- Rank.fresh t.backend t.rng;
      s.holder <- None;
      s.best <- max_int
    done;
    offer t snapshot

  let holders t = Array.map (fun s -> s.holder) t.slots
  let ranks t =
    Array.map (fun s -> if s.holder = None then None else Some s.best) t.slots
end

let oracle_backends =
  [
    ("cheap", Rank.Cheap);
    ("keyed-cheap", Rank.Keyed_cheap 0x2545F4914F6CDD1D);
    ( "siphash",
      Rank.Siphash (Basalt_hashing.Siphash.key_of_ints 0x0706050403020100L 0x0F0E0D0C0B0A0908L) );
    ("prefix-diverse", Rank.Prefix_diverse { prefix_of = (fun id -> id / 8) });
  ]

(* Each op is a candidate batch (possibly empty) optionally followed by a
   sample_tick: small identifier range forces duplicates within and
   across batches, id 0 is the node itself, and ticks re-seed slots so
   the batched path's seen-cache must discriminate stale generations. *)
let prop_update_sample_matches_oracle =
  let print_ops =
    Print.list (Print.pair (Print.list Print.int) Print.bool)
  in
  Check.prop ~name:"batched update_sample matches naive rank oracle"
    ~count:150
    ~print:(Print.pair Print.int print_ops)
    (Gen.pair (Gen.nat ~max:10_000)
       (Gen.list ~min_len:1 ~max_len:10
          (Gen.pair
             (Gen.list ~min_len:0 ~max_len:8 (Gen.nat ~max:12))
             Gen.bool)))
    (fun (seed, ops) ->
      let v = 6 and k = 2 in
      List.for_all
        (fun (_name, backend) ->
          let send ~dst:_ _ = () in
          let t =
            Basalt.create
              ~config:(Config.make ~v ~k ~backend ())
              ~id:(Node_id.of_int 0) ~bootstrap:[||]
              ~rng:(Basalt_prng.Rng.create ~seed)
              ~send ()
          in
          let m = Rank_oracle.create ~backend ~v ~self:0 ~seed in
          List.for_all
            (fun (ids, tick) ->
              let batch =
                Array.of_list (List.map Node_id.of_int ids)
              in
              Basalt.update_sample t batch;
              Rank_oracle.offer m batch;
              if tick then begin
                ignore (Basalt.sample_tick t);
                Rank_oracle.tick m ~k
              end;
              let holders =
                Array.map
                  (Option.map Node_id.to_int)
                  (Basalt.view_slots t)
              in
              holders = Rank_oracle.holders m
              && Basalt.slot_ranks t = Rank_oracle.ranks m)
            ops)
        oracle_backends)

(* exclude_self (the default) keeps the node's own identifier out of
   its view no matter how often it is offered. *)
let prop_view_excludes_self =
  Check.prop ~name:"view never contains self" ~count:200
    ~print:print_seed_ids seed_and_ids
    (fun (seed, ids) ->
      let t = make_node seed in
      (* id 0 is the node itself; feed it alongside everything else. *)
      let fed = Array.of_list (List.map Node_id.of_int (0 :: ids)) in
      Basalt.update_sample t fed;
      not (Array.exists (Node_id.equal (Node_id.of_int 0)) (Basalt.view t)))

let () =
  Alcotest.run "basalt"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick config_defaults;
          Alcotest.test_case "validation" `Quick config_validation;
          Alcotest.test_case "intervals" `Quick config_intervals;
          Alcotest.test_case "equilibrium" `Quick config_equilibrium;
        ] );
      ( "slot",
        [
          Alcotest.test_case "empty" `Quick slot_empty;
          Alcotest.test_case "offer fills" `Quick slot_offer_fills;
          Alcotest.test_case "keeps minimum" `Quick slot_keeps_minimum;
          Alcotest.test_case "rejects worse" `Quick slot_rejects_worse;
          Alcotest.test_case "reset" `Quick slot_reset;
          Alcotest.test_case "prepared agrees" `Quick slot_offer_prepared_agrees;
        ] );
      ( "basalt",
        [
          Alcotest.test_case "bootstrap fills view" `Quick
            basalt_bootstrap_fills_view;
          Alcotest.test_case "empty bootstrap" `Quick basalt_empty_bootstrap;
          Alcotest.test_case "excludes self" `Quick basalt_excludes_self;
          Alcotest.test_case "update_sample converges" `Quick
            basalt_update_sample_converges;
          Alcotest.test_case "select_peer member" `Quick
            basalt_select_peer_member;
          Alcotest.test_case "on_round sends" `Quick basalt_on_round_sends;
          Alcotest.test_case "pull answered" `Quick basalt_pull_answered;
          Alcotest.test_case "push includes sender" `Quick
            basalt_push_includes_sender;
          Alcotest.test_case "sample_tick emits" `Quick basalt_sample_tick_emits;
          Alcotest.test_case "sample_tick round robin" `Quick
            basalt_sample_tick_round_robin;
          Alcotest.test_case "sample_tick empty slots" `Quick
            basalt_sample_tick_empty_slots;
          Alcotest.test_case "sampler interface" `Quick basalt_sampler_interface;
          Alcotest.test_case "flood resistance" `Quick basalt_flood_resistance;
          Alcotest.test_case "least-used balances" `Quick
            basalt_least_used_balances;
          Alcotest.test_case "least-used empty view" `Quick
            basalt_least_used_empty;
          Alcotest.test_case "push payload ablation" `Quick
            basalt_push_payload_ablation;
          Alcotest.test_case "eviction validation" `Quick eviction_validation;
          Alcotest.test_case "eviction sheds silent peers" `Quick
            eviction_sheds_silent_peers;
          Alcotest.test_case "eviction spares responsive peers" `Quick
            eviction_spares_responsive_peers;
          Alcotest.test_case "eviction disabled by default" `Quick
            eviction_disabled_by_default;
          Alcotest.test_case "eviction order deterministic" `Quick
            eviction_order_is_deterministic;
          Alcotest.test_case "probe cleared on any traffic" `Quick
            probe_cleared_on_any_traffic;
          Alcotest.test_case "probe recorded before send" `Quick
            probe_recorded_before_send;
          Alcotest.test_case "eviction resets and re-offers" `Quick
            eviction_resets_slots_and_reoffers;
        ] );
      ( "sample_stream",
        [
          Alcotest.test_case "basics" `Quick stream_basics;
          Alcotest.test_case "eviction" `Quick stream_eviction;
          Alcotest.test_case "proportion" `Quick stream_proportion;
          Alcotest.test_case "iter order" `Quick stream_iter_order;
          Alcotest.test_case "draw" `Quick stream_draw;
          Alcotest.test_case "invalid" `Quick stream_invalid;
        ] );
      Check.suite "properties"
        [
          prop_view_subset_of_fed;
          prop_slot_argmin;
          prop_update_sample_batch_split;
          prop_update_sample_matches_oracle;
          prop_view_excludes_self;
          prop_eviction_spares_recent_peers;
          prop_stream_model;
        ];
    ]
