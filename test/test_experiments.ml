(* Tests for basalt.experiments: scales, experiment wiring, and the
   paper's qualitative claims at quick scale (shape-level regression
   tests for the reproduction). *)

open Basalt_experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Scale --- *)

let scale_parsing () =
  check_bool "quick" true (Scale.of_string "quick" = Ok Scale.Quick);
  check_bool "standard" true (Scale.of_string "standard" = Ok Scale.Standard);
  check_bool "full" true (Scale.of_string "full" = Ok Scale.Full);
  check_bool "unknown" true (Result.is_error (Scale.of_string "huge"));
  Alcotest.(check string) "round trip" "quick" (Scale.to_string Scale.Quick)

let scale_monotone () =
  check_bool "n grows" true (Scale.n Scale.Quick < Scale.n Scale.Standard);
  check_bool "n grows 2" true (Scale.n Scale.Standard < Scale.n Scale.Full);
  check_bool "v grows" true (Scale.v Scale.Quick < Scale.v Scale.Full);
  List.iter
    (fun s ->
      check_bool "axes non-empty" true
        (Scale.view_sizes s <> [] && Scale.byzantine_fractions s <> []
        && Scale.forces s <> [] && Scale.sampling_rates s <> []);
      check_bool "seeds non-empty" true (Scale.seeds s <> []))
    [ Scale.Quick; Scale.Standard; Scale.Full ]

(* --- Theory (fast, closed-form) --- *)

let theory_worked_examples () =
  let w = Theory.worked_examples () in
  check_bool "joining bound < 1e-10" true (w.Theory.joining_bound < 1e-10);
  check_bool "delta_c >= 467" true (w.Theory.delta_c >= 467.0);
  check_bool "c_next >= 592" true (w.Theory.c_next >= 592.0);
  check_bool "safe_c ~ 585" true (w.Theory.safe_c > 580.0 && w.Theory.safe_c < 590.0)

let theory_equilibria_rows () =
  let rows = Theory.equilibria ~scale:Scale.Quick () in
  check_int "one row per view size" (List.length (Scale.view_sizes Scale.Quick))
    (List.length rows);
  List.iter
    (fun r ->
      match (r.Theory.b1, r.Theory.b2) with
      | Some b1, Some b2 ->
          check_bool "b1 < b2" true (b1 < b2);
          check_bool "b1 above f" true (b1 > 0.1)
      | _ -> ())
    rows

(* --- Fig2 wiring --- *)

let fig2_panel_names () =
  check_int "four panels" 4 (List.length Fig2.all_panels);
  List.iter
    (fun p -> check_bool "named" true (String.length (Fig2.panel_name p) > 0))
    Fig2.all_panels

(* The paper's core claims, regression-tested at quick scale.  One shared
   run of fig2a keeps the suite fast. *)
let fig2a_rows = lazy (Fig2.run ~scale:Scale.Quick Fig2.F_byzantine)

let fig2a_shape () =
  let rows = Lazy.force fig2a_rows in
  check_int "row per fraction"
    (List.length (Scale.byzantine_fractions Scale.Quick))
    (List.length rows);
  List.iter
    (fun r ->
      let basalt = r.Fig2.basalt.Basalt_sim.Sweep.mean_sample_byz in
      let brahms = r.Fig2.brahms.Basalt_sim.Sweep.mean_sample_byz in
      (* Basalt must stay close to optimal and beat Brahms (§4.4). *)
      check_bool
        (Printf.sprintf "basalt near optimal at f=%.2f" r.Fig2.x)
        true
        (basalt < r.Fig2.optimal +. 0.1);
      check_bool
        (Printf.sprintf "basalt beats brahms at f=%.2f" r.Fig2.x)
        true (basalt < brahms))
    rows

let fig2a_basalt_never_isolates () =
  List.iter
    (fun r ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "no isolation at f=%.2f" r.Fig2.x)
        0.0 r.Fig2.basalt.Basalt_sim.Sweep.mean_isolated)
    (Lazy.force fig2a_rows)

let fig2_columns_shape () =
  let rows, cols = Fig2.columns (Lazy.force fig2a_rows) in
  check_int "column count" 6 (List.length cols);
  check_bool "row count" true (rows > 0)

(* --- SPS failure (the §4.3 claim) --- *)

let sps_failure_claim () =
  let rows = Sps_failure.run ~scale:Scale.Quick () in
  let find name = List.find (fun r -> r.Sps_failure.protocol = name) rows in
  (* SPS collapses; Basalt and Brahms keep everyone connected. *)
  check_bool "sps mostly isolated" true
    ((find "sps").Sps_failure.isolated_fraction > 0.5);
  check_bool "basalt no isolation" true
    ((find "basalt").Sps_failure.isolated_fraction = 0.0);
  check_bool "brahms no isolation" true
    ((find "brahms").Sps_failure.isolated_fraction = 0.0)

(* --- Cost accounting --- *)

let cost_budget () =
  let rows = Cost.run ~scale:Scale.Quick () in
  check_int "four protocols" 4 (List.length rows);
  List.iter
    (fun r ->
      check_bool (r.Cost.protocol ^ " fits MTU") true r.Cost.fits_mtu;
      check_bool
        (r.Cost.protocol ^ " ~2 msgs/round (plus replies)")
        true
        (r.Cost.msgs_per_node_round >= 1.0 && r.Cost.msgs_per_node_round <= 4.0))
    rows

(* --- Sybil extension --- *)

let sybil_prefix_layout () =
  let layout = Sybil.prefix_layout ~honest:100 ~honest_prefixes:10 ~attacker_prefixes:2 in
  check_int "honest spread" 3 (layout 3);
  check_int "honest wraps" 3 (layout 13);
  check_int "attacker prefix base" 10 (layout 100);
  check_int "attacker cycles" 11 (layout 101);
  check_int "attacker wraps" 10 (layout 102)

(* --- Uniformity statistics --- *)

let uniformity_of_histogram () =
  (* Perfectly uniform histogram: zero TV distance and CV. *)
  let r = Uniformity.of_histogram ~sampler:"t" ~correct:4 [| 5; 5; 5; 5; 99 |] in
  check_int "samples counted over correct only" 20 r.Uniformity.samples;
  check_bool "tv zero" true (Float.abs r.Uniformity.tv_distance < 1e-9);
  check_bool "cv zero" true (Float.abs r.Uniformity.coeff_variation < 1e-9);
  check_bool "max/mean one" true (Float.abs (r.Uniformity.max_over_mean -. 1.0) < 1e-9);
  (* Fully concentrated: TV = 1 - 1/n. *)
  let c = Uniformity.of_histogram ~sampler:"t" ~correct:4 [| 20; 0; 0; 0 |] in
  check_bool "tv of point mass" true
    (Float.abs (c.Uniformity.tv_distance -. 0.75) < 1e-9);
  (* Empty histogram: nan statistics, zero samples. *)
  let e = Uniformity.of_histogram ~sampler:"t" ~correct:3 [| 0; 0; 0 |] in
  check_int "no samples" 0 e.Uniformity.samples;
  check_bool "nan tv" true (Float.is_nan e.Uniformity.tv_distance)

(* --- Robustness under fault plans (DESIGN.md §10) --- *)

let robustness_net_rows () =
  let rows = Robustness_net.run ~scale:Scale.Quick () in
  check_int "four conditions" 4 (List.length rows);
  let find c = List.find (fun r -> r.Robustness_net.condition = c) rows in
  List.iter
    (fun r ->
      (* Basalt must ride out every fault plan at quick scale. *)
      check_bool (r.Robustness_net.condition ^ ": basalt converges") true
        (r.Robustness_net.basalt.Robustness_net.time <> None);
      check_bool
        (r.Robustness_net.condition ^ ": basalt near optimal")
        true
        (r.Robustness_net.basalt.Robustness_net.sample_byz < 0.2))
    rows;
  (* The delivery column reflects the injected transport faults. *)
  let delivered c =
    (find c).Robustness_net.basalt.Robustness_net.delivered_frac
  in
  check_bool "burst loss drops messages" true (delivered "burst-loss" < 1.0);
  check_bool "duplication delivers extras" true (delivered "dup-reorder" > 1.0);
  check_bool "partition drops below clean" true
    (delivered "partition" < delivered "clean")

(* --- Timeline --- *)

let timeline_spec () =
  check_bool "default ok" true (Result.is_ok (Timeline.spec ()));
  check_bool "unknown protocol" true
    (Result.is_error (Timeline.spec ~protocol:"raft" ()));
  match Timeline.spec ~protocol:"classic" ~n:80 ~v:8 ~steps:10.0 () with
  | Error e -> Alcotest.fail e
  | Ok s ->
      let r = Timeline.run s in
      check_bool "series recorded" true
        (Basalt_sim.Measurements.length r.Basalt_sim.Runner.series >= 10)

(* --- Live deployment --- *)

let live_rows () =
  let rows, result = Live.run ~scale:Scale.Quick () in
  check_int "three samplers" 3 (List.length rows);
  check_bool "witness not eclipsed" false
    result.Basalt_avalanche.Deployment.witness_isolated;
  List.iter
    (fun r ->
      check_bool
        (r.Live.sampler ^ " proportion sane")
        true
        (r.Live.malicious_proportion >= 0.0 && r.Live.malicious_proportion <= 0.5))
    rows

let () =
  Alcotest.run "experiments"
    [
      ( "scale",
        [
          Alcotest.test_case "parsing" `Quick scale_parsing;
          Alcotest.test_case "monotone" `Quick scale_monotone;
        ] );
      ( "theory",
        [
          Alcotest.test_case "worked examples" `Quick theory_worked_examples;
          Alcotest.test_case "equilibria rows" `Quick theory_equilibria_rows;
        ] );
      ( "fig2",
        [
          Alcotest.test_case "panel names" `Quick fig2_panel_names;
          Alcotest.test_case "fig2a shape (paper claim)" `Slow fig2a_shape;
          Alcotest.test_case "basalt never isolates" `Slow
            fig2a_basalt_never_isolates;
          Alcotest.test_case "columns shape" `Slow fig2_columns_shape;
        ] );
      ( "sps_failure",
        [ Alcotest.test_case "section 4.3 claim" `Slow sps_failure_claim ] );
      ( "cost",
        [ Alcotest.test_case "budget check" `Slow cost_budget ] );
      ( "sybil",
        [ Alcotest.test_case "prefix layout" `Quick sybil_prefix_layout ] );
      ( "uniformity",
        [ Alcotest.test_case "of_histogram" `Quick uniformity_of_histogram ] );
      ( "robustness_net",
        [ Alcotest.test_case "fault-plan sweep" `Slow robustness_net_rows ] );
      ( "timeline",
        [ Alcotest.test_case "spec and run" `Quick timeline_spec ] );
      ( "live",
        [ Alcotest.test_case "section 5 rows" `Slow live_rows ] );
    ]
