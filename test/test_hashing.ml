(* Tests for basalt.hashing: SipHash, mixers, rank functions. *)

open Basalt_hashing

let check_i64 = Alcotest.(check int64)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The reference-implementation test key: k = 000102...0f (little
   endian words). *)
let ref_key = Siphash.key_of_ints 0x0706050403020100L 0x0F0E0D0C0B0A0908L

(* Expected SipHash-2-4 outputs for inputs 00, 00 01, 00 01 02, ... taken
   from the reference implementation's vectors_sip64 table (converted from
   output bytes to little-endian u64). *)
let siphash24_vector len =
  match len with
  | 0 -> 0x726FDB47DD0E0E31L
  | 1 -> 0x74F839C593DC67FDL
  | 2 -> 0x0D6C8009D9A94F5AL
  | 3 -> 0x85676696D7FB7E2DL
  | 4 -> 0xCF2794E0277187B7L
  | 5 -> 0x18765564CD99A68DL
  | 6 -> 0xCBC9466E58FEE3CEL
  | 7 -> 0xAB0200F58B01D137L
  | 8 -> 0x93F5F5799A932462L
  | 15 -> 0xA129CA6149BE45E5L
  | _ -> invalid_arg "no vector"

let input_bytes len = Bytes.init len Char.chr

let siphash_reference_vectors () =
  List.iter
    (fun len ->
      check_i64
        (Printf.sprintf "vector len=%d" len)
        (siphash24_vector len)
        (Siphash.hash_bytes ref_key (input_bytes len)))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 15 ]

let siphash_int64_consistency () =
  (* hash_int64 must agree with hash_bytes on the 8-byte LE encoding. *)
  List.iter
    (fun x ->
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 x;
      check_i64
        (Printf.sprintf "int64 %Ld" x)
        (Siphash.hash_bytes ref_key b)
        (Siphash.hash_int64 ref_key x))
    [ 0L; 1L; -1L; 0x0706050403020100L; Int64.max_int; Int64.min_int ]

let siphash_pair_consistency () =
  List.iter
    (fun (a, b) ->
      let buf = Bytes.create 16 in
      Bytes.set_int64_le buf 0 a;
      Bytes.set_int64_le buf 8 b;
      check_i64 "pair = bytes"
        (Siphash.hash_bytes ref_key buf)
        (Siphash.hash_int64_pair ref_key a b))
    [ (0L, 0L); (1L, 2L); (-5L, 77L); (Int64.max_int, Int64.min_int) ]

let siphash_string () =
  check_i64 "string = bytes"
    (Siphash.hash_bytes ref_key (Bytes.of_string "hello"))
    (Siphash.hash_string ref_key "hello")

let siphash_key_sensitivity () =
  let k2 = Siphash.key_of_ints 1L 2L in
  check_bool "different keys differ" true
    (Siphash.hash_int ref_key 42 <> Siphash.hash_int k2 42)

let siphash13_differs () =
  check_bool "1-3 differs from 2-4" true
    (Siphash.hash_int ~c:1 ~d:3 ref_key 42 <> Siphash.hash_int ref_key 42)

let siphash_key_of_rng () =
  let rng = Basalt_prng.Rng.create ~seed:3 in
  let k1 = Siphash.key_of_rng rng in
  let k2 = Siphash.key_of_rng rng in
  check_bool "fresh keys differ" true
    (Siphash.hash_int k1 1 <> Siphash.hash_int k2 1)

(* --- SipHash midstate (the rank hot-path cache) --- *)

(* The resumed midstate must be literally the same function as the
   one-shot pair hash: pinned on the reference-vector key first, then
   over a seeded sweep of keys and blocks. *)
let siphash_midstate_reference_key () =
  List.iter
    (fun (a, b) ->
      check_i64
        (Printf.sprintf "midstate resume (%Ld, %Ld)" a b)
        (Siphash.hash_int64_pair ref_key a b)
        (Siphash.finish_int64_pair (Siphash.prepare_int64 ref_key a) b))
    [
      (0L, 0L);
      (1L, 2L);
      (-1L, 1L);
      (-5L, 77L);
      (0x0706050403020100L, 0x0F0E0D0C0B0A0908L);
      (Int64.max_int, Int64.min_int);
      (Int64.min_int, Int64.max_int);
    ]

let siphash_midstate_seeded_sweep () =
  let rng = Basalt_prng.Rng.create ~seed:41 in
  for _ = 1 to 200 do
    let key = Siphash.key_of_rng rng in
    let a = Basalt_prng.Rng.int64 rng and b = Basalt_prng.Rng.int64 rng in
    let ms = Siphash.prepare_int64 key a in
    check_i64 "sweep: resumed = one-shot"
      (Siphash.hash_int64_pair key a b)
      (Siphash.finish_int64_pair ms b);
    (* One midstate serves many second blocks. *)
    let b2 = Basalt_prng.Rng.int64 rng in
    check_i64 "sweep: midstate reusable"
      (Siphash.hash_int64_pair key a b2)
      (Siphash.finish_int64_pair ms b2)
  done

let siphash_midstate_nondefault_instance () =
  (* Non-2-4 instances take the generic resumption path; it must agree
     with the one-shot hash too. *)
  let ms13 = Siphash.prepare_int64 ~c:1 ref_key 42L in
  check_i64 "1-3 resumed = one-shot"
    (Siphash.hash_int64_pair ~c:1 ~d:3 ref_key 42L 7L)
    (Siphash.finish_int64_pair ~d:3 ms13 7L);
  let ms24 = Siphash.prepare_int64 ref_key 42L in
  check_bool "instances differ" true
    (Siphash.finish_int64_pair ~d:3 ms13 7L
    <> Siphash.finish_int64_pair ms24 7L)

(* --- Mixers --- *)

let mix64_matches_splitmix () =
  List.iter
    (fun x ->
      check_i64 "mix64 = splitmix finalizer" (Basalt_prng.Splitmix64.mix x)
        (Mix.mix64 x))
    [ 0L; 1L; -1L; 123456789L ]

let fmix64_known () =
  (* fmix64 0 = 0 is a well-known fixed point of the murmur finalizer. *)
  check_i64 "fmix64 0" 0L (Mix.fmix64 0L);
  check_bool "fmix64 1" true (Mix.fmix64 1L <> 1L)

let mix63_non_negative () =
  List.iter
    (fun x -> check_bool "non-negative" true (Mix.mix63 x >= 0))
    [ 0; 1; -1; max_int; min_int; 42 ]

let mix63_no_easy_collisions () =
  let seen = Hashtbl.create 10_000 in
  for i = 0 to 9_999 do
    let h = Mix.mix63 i in
    check_bool "no collision among consecutive" false (Hashtbl.mem seen h);
    Hashtbl.add seen h ()
  done

let combine63_depends_on_both () =
  check_bool "seed matters" true (Mix.combine63 1 42 <> Mix.combine63 2 42);
  check_bool "value matters" true (Mix.combine63 1 42 <> Mix.combine63 1 43)

let fnv1a_vectors () =
  check_i64 "empty" 0xCBF29CE484222325L (Mix.fnv1a64 "");
  check_i64 "a" 0xAF63DC4C8601EC8CL (Mix.fnv1a64 "a");
  check_i64 "foobar" 0x85944171F73967E8L (Mix.fnv1a64 "foobar")

(* --- Rank --- *)

let rank_deterministic () =
  let rng = Basalt_prng.Rng.create ~seed:11 in
  let seed = Rank.fresh Rank.Cheap rng in
  check_int "same input same rank" (Rank.rank seed 7) (Rank.rank seed 7)

let rank_non_negative () =
  let rng = Basalt_prng.Rng.create ~seed:12 in
  List.iter
    (fun backend ->
      let seed = Rank.fresh backend rng in
      for id = 0 to 100 do
        check_bool "rank >= 0" true (Rank.rank seed id >= 0)
      done)
    [ Rank.Cheap; Rank.Siphash ref_key ]

let rank_prepared_agrees () =
  let rng = Basalt_prng.Rng.create ~seed:13 in
  List.iter
    (fun backend ->
      let seed = Rank.fresh backend rng in
      for id = 0 to 50 do
        let p = Rank.prepare backend id in
        check_int "prepared = direct" (Rank.rank seed id)
          (Rank.rank_prepared seed p)
      done)
    [ Rank.Cheap; Rank.Siphash ref_key ]

let rank_of_int_deterministic () =
  let s1 = Rank.of_int Rank.Cheap 99 and s2 = Rank.of_int Rank.Cheap 99 in
  check_int "same seed value" (Rank.rank s1 5) (Rank.rank s2 5);
  check_int "seed_value round trip" 99 (Rank.seed_value s1)

let rank_seed_changes_order () =
  (* Two fresh seeds should order a candidate set differently (with
     overwhelming probability over 64-bit seeds). *)
  let rng = Basalt_prng.Rng.create ~seed:14 in
  let s1 = Rank.fresh Rank.Cheap rng and s2 = Rank.fresh Rank.Cheap rng in
  let argmin s =
    let best = ref 0 in
    for id = 1 to 999 do
      if Rank.rank s id < Rank.rank s !best then best := id
    done;
    !best
  in
  check_bool "different winners (overwhelmingly likely)" true
    (argmin s1 <> argmin s2)

(* Min-wise independence: with fresh random seeds, each of n candidates
   wins the argmin with probability ~1/n.  This is the property Basalt's
   uniform sampling rests on; test both backends. *)
let rank_minwise_uniformity backend () =
  let rng = Basalt_prng.Rng.create ~seed:15 in
  let n = 20 in
  let trials = 20_000 in
  let wins = Array.make n 0 in
  for _ = 1 to trials do
    let seed = Rank.fresh backend rng in
    let best = ref 0 in
    for id = 1 to n - 1 do
      if Rank.rank seed id < Rank.rank seed !best then best := id
    done;
    wins.(!best) <- wins.(!best) + 1
  done;
  let expected = trials / n in
  Array.iteri
    (fun i w ->
      check_bool
        (Printf.sprintf "candidate %d wins ~uniformly (%d)" i w)
        true
        (abs (w - expected) < expected / 4))
    wins

(* --- Prefix-diverse ranking (the §6 crafted rank function) --- *)

let prefix_backend = Rank.Prefix_diverse { prefix_of = (fun id -> id / 100) }

let prefix_rank_deterministic () =
  let s = Rank.of_int prefix_backend 5 in
  check_int "deterministic" (Rank.rank s 42) (Rank.rank s 42);
  check_bool "non-negative" true (Rank.rank s 42 >= 0)

let prefix_rank_prefix_dominates () =
  (* All identifiers of the best-ranked prefix must rank below every
     identifier of any other prefix, for any seed. *)
  let rng = Basalt_prng.Rng.create ~seed:77 in
  for _ = 1 to 50 do
    let s = Rank.fresh prefix_backend rng in
    (* prefixes 0 and 1 hold ids 0..99 and 100..199 *)
    let best_prefix =
      let r0 = Rank.rank s 0 and r100 = Rank.rank s 100 in
      if r0 < r100 then 0 else 1
    in
    let lo = best_prefix * 100 and hi = (1 - best_prefix) * 100 in
    for i = 0 to 99 do
      check_bool "prefix order dominates id order" true
        (Rank.rank s (lo + i) < Rank.rank s (hi + (99 - i)))
    done
  done

let prefix_rank_uniform_within_prefix () =
  (* Within one prefix the winner is uniform across its members. *)
  let rng = Basalt_prng.Rng.create ~seed:78 in
  let trials = 8000 in
  let members = 10 in
  let wins = Array.make members 0 in
  for _ = 1 to trials do
    let s = Rank.fresh prefix_backend rng in
    let best = ref 0 in
    for i = 1 to members - 1 do
      if Rank.rank s i < Rank.rank s !best then best := i
    done;
    wins.(!best) <- wins.(!best) + 1
  done;
  let expected = trials / members in
  Array.iteri
    (fun i w ->
      check_bool
        (Printf.sprintf "member %d wins uniformly (%d)" i w)
        true
        (abs (w - expected) < expected / 3))
    wins

let prefix_rank_prepared_agrees () =
  let rng = Basalt_prng.Rng.create ~seed:79 in
  let s = Rank.fresh prefix_backend rng in
  for id = 0 to 300 do
    check_int "prepared = direct" (Rank.rank s id)
      (Rank.rank_prepared s (Rank.prepare prefix_backend id))
  done

module Check = Basalt_check.Check
module Gen = Check.Gen
module Print = Check.Print

(* Every evaluation path — plain, prepared, digested (and for SipHash
   the precomputed midstate they all share) — must produce the same
   rank, for every backend. *)
let all_backends =
  [
    ("cheap", Rank.Cheap);
    ("keyed-cheap", Rank.Keyed_cheap 0x5DEECE66D);
    ("siphash", Rank.Siphash ref_key);
    ("prefix-diverse", Rank.Prefix_diverse { prefix_of = (fun id -> id / 64) });
  ]

let prop_rank_paths_equal =
  Check.prop ~name:"rank = rank_prepared = rank_digested (all backends)"
    ~count:1000
    ~print:(Print.pair Print.int Print.int)
    Gen.(pair (nat ~max:1_000_000) (nat ~max:1_000_000))
    (fun (sv, id) ->
      List.for_all
        (fun (_, backend) ->
          let seed = Rank.of_int backend sv in
          let r = Rank.rank seed id in
          r = Rank.rank_prepared seed (Rank.prepare backend id)
          && r = Rank.rank_digested seed ~id ~digest:(Rank.digest id))
        all_backends)

(* The SipHash backend's cached midstate path must equal the uncached
   reference formula: hash_int64_pair over (seed, id), masked to a
   non-negative native int. *)
let prop_sip_rank_matches_reference =
  Check.prop ~name:"siphash rank = uncached hash_int64_pair" ~count:500
    ~print:(Print.pair Print.int Print.int)
    Gen.(pair (nat ~max:1_000_000) (nat ~max:1_000_000))
    (fun (sv, id) ->
      let seed = Rank.of_int (Rank.Siphash ref_key) sv in
      Rank.rank seed id
      = Int64.to_int
          (Siphash.hash_int64_pair ref_key (Int64.of_int sv) (Int64.of_int id))
        land max_int)

(* Keyed_cheap is pinned to its documented formula and actually keyed. *)
let keyed_cheap_formula () =
  let key = 0x1234_5678_9ABC in
  let s = Rank.of_int (Rank.Keyed_cheap key) 77 in
  for id = 0 to 200 do
    check_int "keyed63 formula" (Mix.keyed63 ~key 77 id) (Rank.rank s id)
  done;
  let s2 = Rank.of_int (Rank.Keyed_cheap (key + 1)) 77 in
  check_bool "key matters" true (Rank.rank s 42 <> Rank.rank s2 42)

let prop_mix63_nonneg =
  Check.prop ~name:"mix63 non-negative" ~count:1000 ~print:Print.int
    (Gen.int_range min_int max_int)
    (fun x -> Mix.mix63 x >= 0)

let () =
  Alcotest.run "hashing"
    [
      ( "siphash",
        [
          Alcotest.test_case "reference vectors" `Quick
            siphash_reference_vectors;
          Alcotest.test_case "int64 fast path" `Quick siphash_int64_consistency;
          Alcotest.test_case "pair fast path" `Quick siphash_pair_consistency;
          Alcotest.test_case "string wrapper" `Quick siphash_string;
          Alcotest.test_case "key sensitivity" `Quick siphash_key_sensitivity;
          Alcotest.test_case "siphash-1-3 variant" `Quick siphash13_differs;
          Alcotest.test_case "key_of_rng" `Quick siphash_key_of_rng;
          Alcotest.test_case "midstate reference key" `Quick
            siphash_midstate_reference_key;
          Alcotest.test_case "midstate seeded sweep" `Quick
            siphash_midstate_seeded_sweep;
          Alcotest.test_case "midstate non-default instance" `Quick
            siphash_midstate_nondefault_instance;
        ] );
      ( "mix",
        [
          Alcotest.test_case "mix64 = splitmix" `Quick mix64_matches_splitmix;
          Alcotest.test_case "fmix64 known" `Quick fmix64_known;
          Alcotest.test_case "mix63 non-negative" `Quick mix63_non_negative;
          Alcotest.test_case "mix63 collisions" `Quick mix63_no_easy_collisions;
          Alcotest.test_case "combine63" `Quick combine63_depends_on_both;
          Alcotest.test_case "fnv1a vectors" `Quick fnv1a_vectors;
        ] );
      ( "rank",
        [
          Alcotest.test_case "deterministic" `Quick rank_deterministic;
          Alcotest.test_case "non-negative" `Quick rank_non_negative;
          Alcotest.test_case "prepared agrees" `Quick rank_prepared_agrees;
          Alcotest.test_case "of_int" `Quick rank_of_int_deterministic;
          Alcotest.test_case "seed changes order" `Quick rank_seed_changes_order;
          Alcotest.test_case "min-wise uniformity (cheap)" `Slow
            (rank_minwise_uniformity Rank.Cheap);
          Alcotest.test_case "min-wise uniformity (siphash)" `Slow
            (rank_minwise_uniformity (Rank.Siphash ref_key));
          Alcotest.test_case "prefix-diverse deterministic" `Quick
            prefix_rank_deterministic;
          Alcotest.test_case "prefix-diverse prefix dominates" `Quick
            prefix_rank_prefix_dominates;
          Alcotest.test_case "prefix-diverse uniform within prefix" `Slow
            prefix_rank_uniform_within_prefix;
          Alcotest.test_case "prefix-diverse prepared agrees" `Quick
            prefix_rank_prepared_agrees;
          Alcotest.test_case "keyed-cheap formula" `Quick keyed_cheap_formula;
          Alcotest.test_case "min-wise uniformity (keyed-cheap)" `Slow
            (rank_minwise_uniformity (Rank.Keyed_cheap 0xBEEF));
        ] );
      Check.suite "properties"
        [
          prop_rank_paths_equal;
          prop_sip_rank_matches_reference;
          prop_mix63_nonneg;
        ];
    ]
