(* Tests for the basalt-lint determinism & interface linter (tool/lint).

   Five layers:
   - inline fixture snippets per rule D1–D8, asserting the exact
     [file:line:rule] diagnostics (and that clean variants stay clean);
   - suppression mechanics: `lint: allow` pragmas and the allowlist,
     including the D11 stale-suppression audit over synthetic trees;
   - typed-tier rules D9/D10 over the compiled fixtures in
     tool/lint/fixtures_typed (their .cmt files are dune deps of this
     test), both through the library and through the CLI;
   - Basalt_check properties: pragma suppression is line-position
     sensitive, and verdicts are independent of the order files are
     linted in (no compiler-libs state leaks between units);
   - a whole-repo run over the real sources (materialised into the build
     sandbox via the dune [deps] of this test) asserting zero findings,
     plus a CLI run over the checked-in fixture files. *)

module Lint = Basalt_lint.Lint
module Typed = Basalt_lint.Typed
module Driver = Basalt_lint.Driver

let check = Alcotest.check
let check_int = Alcotest.(check int)

(* [file:line:rule] triples of the findings for [source] linted as
   [rel_path], in order. *)
let lint ?(allow = Lint.empty_allowlist) ~rel_path source =
  List.map
    (fun (f : Lint.finding) -> (f.file, f.line, Lint.rule_name f.rule))
    (Lint.lint_source ~rel_path ~allow source)

let triples = Alcotest.(list (triple string int string))

(* --- D1: Random --- *)

let d1_flags_random () =
  check triples "Random.int flagged"
    [ ("lib/proto/bad.ml", 2, "D1") ]
    (lint ~rel_path:"lib/proto/bad.ml" "let f () =\n  Random.int 6\n");
  check triples "open Random flagged"
    [ ("bin/bad.ml", 1, "D1") ]
    (lint ~rel_path:"bin/bad.ml" "open Random\n");
  check triples "module alias flagged"
    [ ("lib/sim/bad.ml", 1, "D1") ]
    (lint ~rel_path:"lib/sim/bad.ml" "module R = Random\n");
  check triples "Stdlib.Random flagged"
    [ ("test/bad.ml", 1, "D1") ]
    (lint ~rel_path:"test/bad.ml" "let s = Stdlib.Random.bits ()\n")

let d1_exempts_prng () =
  check triples "lib/prng may reference Random"
    []
    (lint ~rel_path:"lib/prng/compat.ml" "let s = Random.bits ()\n")

(* --- D2: wall clocks --- *)

let d2_flags_wall_clocks () =
  check triples "all three clock reads flagged"
    [
      ("lib/engine/bad.ml", 1, "D2");
      ("lib/engine/bad.ml", 2, "D2");
      ("lib/engine/bad.ml", 3, "D2");
    ]
    (lint ~rel_path:"lib/engine/bad.ml"
       "let a = Unix.gettimeofday ()\nlet b = Unix.time ()\nlet c = Sys.time ()\n")

let d2_respects_allowlist () =
  let allow = Lint.allowlist_of_lines [ "D2 bin/clocky.ml" ] in
  check triples "allowlisted file is clean" []
    (lint ~allow ~rel_path:"bin/clocky.ml" "let a = Unix.gettimeofday ()\n");
  check triples "other files still flagged"
    [ ("bin/other.ml", 1, "D2") ]
    (lint ~allow ~rel_path:"bin/other.ml" "let a = Unix.gettimeofday ()\n")

(* --- D3: polymorphic hash --- *)

let d3_flags_hashtbl_hash () =
  check triples "Hashtbl.hash flagged everywhere, even tests"
    [ ("test/bad.ml", 1, "D3") ]
    (lint ~rel_path:"test/bad.ml" "let h x = Hashtbl.hash x\n");
  check triples "seeded variant too"
    [ ("lib/graph/bad.ml", 1, "D3") ]
    (lint ~rel_path:"lib/graph/bad.ml" "let h x = Hashtbl.seeded_hash 7 x\n");
  check triples "other Hashtbl functions fine" []
    (lint ~rel_path:"lib/graph/ok.ml" "let t = Hashtbl.create 16\n")

(* --- D4: polymorphic compare in protocol libraries --- *)

let d4_flags_poly_compare () =
  check triples "= on two unknowns flagged"
    [ ("lib/basalt_core/bad.ml", 1, "D4") ]
    (lint ~rel_path:"lib/basalt_core/bad.ml" "let f a b = a = b\n");
  check triples "compare as function value flagged"
    [ ("lib/brahms/bad.ml", 1, "D4") ]
    (lint ~rel_path:"lib/brahms/bad.ml" "let f xs = List.sort compare xs\n");
  check triples "List.mem flagged"
    [ ("lib/sps/bad.ml", 1, "D4") ]
    (lint ~rel_path:"lib/sps/bad.ml" "let f x xs = List.mem x xs\n")

let d4_allows_primitive_operands () =
  check triples "literal operand is fine" []
    (lint ~rel_path:"lib/basalt_core/ok.ml" "let f n = n = 0\n");
  check triples "constant constructor is fine" []
    (lint ~rel_path:"lib/basalt_core/ok.ml" "let f o = o <> None\n");
  check triples "arithmetic operand is fine" []
    (lint ~rel_path:"lib/proto/ok.ml" "let f a b c = a - b > c\n");
  check triples "M.length / M.compare operands are fine" []
    (lint ~rel_path:"lib/sps/ok.ml"
       "let f a xs = Array.length xs > a\nlet g a b = Int.compare a b < 0\n")

let d4_out_of_scope_dirs () =
  check triples "lib/graph may use polymorphic compare" []
    (lint ~rel_path:"lib/graph/ok.ml" "let f a b = a = b\n");
  check triples "tests may use polymorphic compare" []
    (lint ~rel_path:"test/ok.ml" "let f a b = compare a b\n")

(* --- D5: interface documentation --- *)

let d5_flags_missing_doc () =
  check triples "undocumented val flagged"
    [ ("lib/codec/bad.mli", 4, "D5") ]
    (lint ~rel_path:"lib/codec/bad.mli"
       "val documented : int\n(** Fine. *)\n\nval undocumented : int\n");
  check triples "doc before the val also counts" []
    (lint ~rel_path:"lib/codec/ok.mli" "(** Fine. *)\nval documented : int\n")

let d5_scope_is_lib_mli () =
  check triples "bin interfaces exempt" []
    (lint ~rel_path:"bin/ok.mli" "val undocumented : int\n");
  check triples "ml files exempt from the doc rule" []
    (lint ~rel_path:"lib/codec/ok.ml" "let x = 1\n")

(* --- D6: console output --- *)

let d6_flags_printf () =
  check triples "print_endline and Printf.printf flagged"
    [ ("lib/proto/bad.ml", 1, "D6"); ("lib/proto/bad.ml", 2, "D6") ]
    (lint ~rel_path:"lib/proto/bad.ml"
       "let f msg = print_endline msg\nlet g () = Printf.printf \"x\"\n");
  check triples "sprintf is fine" []
    (lint ~rel_path:"lib/proto/ok.ml" "let f x = Printf.sprintf \"%d\" x\n")

let d6_scope_excludes_experiments () =
  check triples "lib/experiments may print" []
    (lint ~rel_path:"lib/experiments/ok.ml" "let f () = print_endline \"t\"\n");
  check triples "bin may print" []
    (lint ~rel_path:"bin/ok.ml" "let f () = print_endline \"t\"\n")

(* --- D7: concurrency primitives quarantined in lib/parallel --- *)

let d7_flags_concurrency () =
  check triples "Domain flagged in sim code"
    [ ("lib/sim/bad.ml", 1, "D7") ]
    (lint ~rel_path:"lib/sim/bad.ml"
       "let d = Domain.spawn (fun () -> ())\n");
  check triples "Atomic flagged in bin"
    [ ("bin/bad.ml", 1, "D7") ]
    (lint ~rel_path:"bin/bad.ml" "let c = Atomic.make 0\n");
  check triples "Mutex module alias flagged"
    [ ("lib/engine/bad.ml", 1, "D7") ]
    (lint ~rel_path:"lib/engine/bad.ml" "module M = Mutex\n");
  check triples "open Condition flagged"
    [ ("test/bad.ml", 1, "D7") ]
    (lint ~rel_path:"test/bad.ml" "open Condition\n");
  check triples "Stdlib.Domain flagged"
    [ ("lib/proto/bad.ml", 1, "D7") ]
    (lint ~rel_path:"lib/proto/bad.ml"
       "let n = Stdlib.Domain.recommended_domain_count ()\n")

let d7_exempts_lib_parallel () =
  check triples "lib/parallel may use the primitives" []
    (lint ~rel_path:"lib/parallel/pool.ml"
       "let d = Domain.spawn (fun () -> Atomic.make 0)\nlet m = Mutex.create ()\n");
  check triples "pragma suppresses D7 elsewhere" []
    (lint ~rel_path:"lib/sim/ok.ml"
       "(* lint: allow D7 — documented exception *)\nlet c = Atomic.make 0\n")

(* --- D8: observability confined to lib/obs + allowlisted boundaries --- *)

let d8_flags_obs_references () =
  check triples "Obs usage flagged in protocol code"
    [ ("lib/proto/bad.ml", 1, "D8"); ("lib/proto/bad.ml", 1, "D8") ]
    (lint ~rel_path:"lib/proto/bad.ml"
       "let c = Basalt_obs.Obs.counter Basalt_obs.Obs.disabled \"x\"\n");
  check triples "module alias flagged"
    [ ("lib/graph/bad.ml", 1, "D8") ]
    (lint ~rel_path:"lib/graph/bad.ml" "module Obs = Basalt_obs.Obs\n");
  check triples "open flagged"
    [ ("bin/bad.ml", 1, "D8") ]
    (lint ~rel_path:"bin/bad.ml" "open Basalt_obs\n")

let d8_exempts_lib_obs_and_allowlist () =
  check triples "lib/obs may reference itself" []
    (lint ~rel_path:"lib/obs/extra.ml" "module O = Basalt_obs.Obs\n");
  let allow = Lint.allowlist_of_lines [ "D8 lib/engine/" ] in
  check triples "allowlisted boundary is clean" []
    (lint ~allow ~rel_path:"lib/engine/engine.ml"
       "module Obs = Basalt_obs.Obs\n");
  check triples "pragma suppresses D8" []
    (lint ~rel_path:"lib/analysis/ok.ml"
       "(* lint: allow D8 — documented exception *)\n\
        module Obs = Basalt_obs.Obs\n")

(* --- suppression pragmas --- *)

let pragma_suppresses () =
  check triples "pragma on the same line" []
    (lint ~rel_path:"lib/basalt_core/ok.ml"
       "let f a b = a = b (* lint: allow D4 — both are ints *)\n");
  check triples "pragma on the previous line" []
    (lint ~rel_path:"lib/basalt_core/ok.ml"
       "(* lint: allow D4 — both are ints *)\nlet f a b = a = b\n");
  check triples "pragma names a different rule: still flagged"
    [ ("lib/basalt_core/bad.ml", 1, "D4") ]
    (lint ~rel_path:"lib/basalt_core/bad.ml"
       "let f a b = a = b (* lint: allow D1 *)\n");
  check triples "pragma two lines up does not apply"
    [ ("lib/basalt_core/bad.ml", 3, "D4") ]
    (lint ~rel_path:"lib/basalt_core/bad.ml"
       "(* lint: allow D4 *)\n\nlet f a b = a = b\n")

let allowlist_parsing () =
  let allow =
    Lint.allowlist_of_lines
      [ "# comment"; ""; "D2 bin/a.ml"; "D6 lib/sim/ # trailing comment" ]
  in
  check triples "directory prefix covers subtree" []
    (lint ~allow ~rel_path:"lib/sim/deep.ml" "let f () = print_endline \"x\"\n");
  check triples "prefix does not leak to siblings"
    [ ("lib/engine/e.ml", 1, "D6") ]
    (lint ~allow ~rel_path:"lib/engine/e.ml"
       "let f () = print_endline \"x\"\n");
  Alcotest.check_raises "unknown rule rejected"
    (Failure "allowlist: unknown rule: D99")
    (fun () -> ignore (Lint.allowlist_of_lines [ "D99 foo.ml" ]))

let allowlist_path_normalization () =
  (* `./`-prefixed and duplicated-slash entries must still match — a
     suppression that silently never fires is worse than none. *)
  let allow = Lint.allowlist_of_lines [ "D6 ./lib//sim/" ] in
  check triples "normalized dir entry covers subtree" []
    (lint ~allow ~rel_path:"lib/sim/deep.ml" "let f () = print_endline \"x\"\n");
  let allow = Lint.allowlist_of_lines [ "D2 ./bin/a.ml" ] in
  check triples "normalized file entry matches" []
    (lint ~allow ~rel_path:"bin/a.ml" "let t = Unix.time ()\n");
  check triples "finding path is normalized before comparison too" []
    (lint ~allow ~rel_path:"./bin//a.ml" "let t = Unix.time ()\n")

let allowlist_rejects_duplicates () =
  Alcotest.check_raises "exact duplicate rejected"
    (Failure "allowlist: duplicate entry: D2 bin/a.ml")
    (fun () ->
      ignore (Lint.allowlist_of_lines [ "D2 bin/a.ml"; "D2 bin/a.ml" ]));
  Alcotest.check_raises "duplicate modulo normalization rejected"
    (Failure "allowlist: duplicate entry: D2 bin/a.ml")
    (fun () ->
      ignore (Lint.allowlist_of_lines [ "D2 bin/a.ml"; "D2 ./bin//a.ml" ]));
  (* Same path under two rules is two distinct entries, not a dup. *)
  ignore (Lint.allowlist_of_lines [ "D2 bin/a.ml"; "D6 bin/a.ml" ])

let parse_error_reported () =
  match
    Lint.lint_source ~rel_path:"lib/proto/broken.ml"
      ~allow:Lint.empty_allowlist "let f =\nlet\n"
  with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Lint.Parse_error (file, _, _) ->
      check Alcotest.string "reported file" "lib/proto/broken.ml" file

(* --- the real repository is clean --- *)

(* The dune deps of this test materialise the repo sources in the build
   sandbox; the test runs in <sandbox>/test, so the repo root is [..]. *)
let repo_root = Filename.concat (Filename.dirname Sys.executable_name) ".."

let whole_repo_is_clean () =
  let allow =
    Lint.load_allowlist
      (Filename.concat repo_root "tool/lint/allowlist.txt")
  in
  (* Untyped tier + D11 audit: every pragma and allowlist entry for the
     untyped rules must still be earning its keep. *)
  let report = Driver.run ~root:repo_root ~allow () in
  List.iter
    (fun f -> Format.eprintf "unexpected: %a@." Lint.pp_finding f)
    report.Driver.findings;
  check_int "no findings in the repository" 0
    (List.length report.Driver.findings);
  check Alcotest.bool "scanned a plausible number of files" true
    (report.Driver.files_scanned > 50)

(* --- the CLI over the checked-in fixture files --- *)

let run_cli args =
  let exe = Filename.concat repo_root "tool/lint/main.exe" in
  let out = Filename.temp_file "basalt_lint" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe) args
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (code, s)

let fixture name =
  Filename.quote (Filename.concat repo_root ("tool/lint/fixtures/" ^ name))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let cli_flags_fixtures () =
  let expect args substrings =
    let code, output = run_cli args in
    check_int ("exit code for " ^ args) 1 code;
    List.iter
      (fun sub ->
        if not (contains ~sub output) then
          Alcotest.failf "output of %s misses %S:\n%s" args sub output)
      substrings
  in
  expect
    (fixture "d1_random.ml")
    [ "d1_random.ml:2:D1:" ];
  expect
    (fixture "d2_wallclock.ml")
    [ "d2_wallclock.ml:2:D2:"; "d2_wallclock.ml:3:D2:" ];
  expect
    (fixture "d3_hashtbl_hash.ml")
    [ "d3_hashtbl_hash.ml:2:D3:" ];
  expect
    ("--as lib/basalt_core/d4_poly_compare.ml " ^ fixture "d4_poly_compare.ml")
    [
      "d4_poly_compare.ml:3:D4:";
      "d4_poly_compare.ml:4:D4:";
      "d4_poly_compare.ml:5:D4:";
    ];
  expect
    ("--as lib/basalt_core/d5_missing_doc.mli " ^ fixture "d5_missing_doc.mli")
    [ "d5_missing_doc.mli:7:D5:" ];
  expect
    ("--as lib/proto/d6_printf.ml " ^ fixture "d6_printf.ml")
    [ "d6_printf.ml:3:D6:"; "d6_printf.ml:4:D6:" ];
  expect
    (fixture "d7_domain.ml")
    [
      "d7_domain.ml:2:D7:";
      "d7_domain.ml:3:D7:";
      "d7_domain.ml:4:D7:";
      "d7_domain.ml:5:D7:";
    ];
  expect
    (fixture "d8_obs.ml")
    [
      "d8_obs.ml:2:D8:";
      "d8_obs.ml:4:D8:";
      "d8_obs.ml:5:D8:";
      "d8_obs.ml:7:D8:";
    ]

let cli_clean_repo_exits_zero () =
  let code, output = run_cli ("--root " ^ Filename.quote repo_root) in
  if code <> 0 then Alcotest.failf "expected exit 0, got %d:\n%s" code output

(* --- typed tier: D9/D10 over the compiled fixtures --- *)

(* The .cmt files of tool/lint/fixtures_typed are dune deps of this
   test, so they sit at their build locations inside the sandbox. *)
let fixture_cmt name =
  Filename.concat repo_root
    ("tool/lint/fixtures_typed/.lint_fixtures_typed.objs/byte/\
      lint_fixtures_typed__" ^ String.capitalize_ascii name ^ ".cmt")

let typed_triples ~rel_path name =
  List.map
    (fun (f : Lint.finding) -> (f.file, f.line, Lint.rule_name f.rule))
    (Typed.lint_cmt ~rel_path (fixture_cmt name))

let d9_flags_fold_evict () =
  (* The PR 5 run_eviction bug class, pinned to the eviction call line. *)
  check triples "draw-through-helper under Hashtbl.fold flagged"
    [ ("lib/d9_fold_evict.ml", 21, "D9") ]
    (typed_triples ~rel_path:"lib/d9_fold_evict.ml" "d9_fold_evict")

let d9_sorted_version_is_clean () =
  check triples "collect + sort + evict is clean" []
    (typed_triples ~rel_path:"lib/d9_sorted_ok.ml" "d9_sorted_ok")

let d9_flags_unsorted_taint () =
  check triples "unsorted fold result feeding draws flagged"
    [ ("lib/d9_taint.ml", 21, "D9") ]
    (typed_triples ~rel_path:"lib/d9_taint.ml" "d9_taint")

let d9_flags_obs_emission () =
  check triples "telemetry inside fold flagged"
    [ ("lib/d9_obs_iter.ml", 10, "D9") ]
    (typed_triples ~rel_path:"lib/d9_obs_iter.ml" "d9_obs_iter")

let d10_flags_two_callees () =
  check triples "second handoff without split flagged"
    [ ("lib/d10_alias.ml", 17, "D10") ]
    (typed_triples ~rel_path:"lib/d10_alias.ml" "d10_alias")

let d10_split_version_is_clean () =
  check triples "split-per-consumer is clean" []
    (typed_triples ~rel_path:"lib/d10_split_ok.ml" "d10_split_ok")

let d10_flags_closure_capture () =
  check triples "closure capture + second consumer flagged"
    [ ("lib/d10_closure.ml", 17, "D10") ]
    (typed_triples ~rel_path:"lib/d10_closure.ml" "d10_closure")

let d10_scope_is_lib () =
  (* The same aliasing outside lib/ (or inside lib/check, whose
     generators deliberately chain draws) is not D10's business. *)
  check triples "test/ attribution is out of scope" []
    (typed_triples ~rel_path:"test/d10_alias.ml" "d10_alias");
  check triples "lib/check attribution is out of scope" []
    (typed_triples ~rel_path:"lib/check/d10_alias.ml" "d10_alias")

(* The typed tier reports raw findings; the pragma variants are only
   clean once the CLI merges source pragmas in — both halves pinned. *)
let typed_pragmas_need_the_driver () =
  check triples "raw typed findings ignore pragmas"
    [ ("lib/d9_pragma.ml", 11, "D9") ]
    (typed_triples ~rel_path:"lib/d9_pragma.ml" "d9_pragma");
  check triples "raw D10 pragma fixture still flagged"
    [ ("lib/d10_pragma.ml", 17, "D10") ]
    (typed_triples ~rel_path:"lib/d10_pragma.ml" "d10_pragma")

let typed_fixture_source name =
  Filename.quote
    (Filename.concat repo_root ("tool/lint/fixtures_typed/" ^ name))

let cli_typed_fixtures () =
  let run name rules =
    run_cli
      (Printf.sprintf "--root %s --as lib/%s.ml --cmt %s --rules %s %s"
         (Filename.quote repo_root) name
         (Filename.quote (fixture_cmt name))
         rules
         (typed_fixture_source (name ^ ".ml")))
  in
  let code, output = run "d9_fold_evict" "D9,D10" in
  check_int "positive fixture exits 1" 1 code;
  if not (contains ~sub:"d9_fold_evict.ml:21:D9:" output) then
    Alcotest.failf "missing D9 finding:\n%s" output;
  let code, output = run "d9_fold_evict" "D10" in
  check_int "--rules D10 filters the D9 finding away" 0 code;
  if String.trim output <> "" then
    Alcotest.failf "expected no output, got:\n%s" output;
  let code, _ = run "d9_pragma" "D9,D10" in
  check_int "pragma-suppressed D9 fixture exits 0" 0 code;
  let code, _ = run "d10_pragma" "D9,D10" in
  check_int "pragma-suppressed D10 fixture exits 0" 0 code;
  let code, output = run "d10_closure" "D9,D10" in
  check_int "closure fixture exits 1" 1 code;
  if not (contains ~sub:"d10_closure.ml:17:D10:" output) then
    Alcotest.failf "missing D10 finding:\n%s" output

(* --- D11: stale-suppression audit over synthetic trees --- *)

let rec mkdirs d =
  if not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    (try Sys.mkdir d 0o755 with Sys_error _ -> ())
  end

let rec rm_tree d =
  if Sys.is_directory d then begin
    Array.iter (fun e -> rm_tree (Filename.concat d e)) (Sys.readdir d);
    Sys.rmdir d
  end
  else Sys.remove d

let with_temp_tree files f =
  let dir = Filename.temp_file "basalt_lint_tree" "" in
  Sys.remove dir;
  mkdirs dir;
  Fun.protect
    ~finally:(fun () -> rm_tree dir)
    (fun () ->
      List.iter
        (fun (path, content) ->
          let full = Filename.concat dir path in
          mkdirs (Filename.dirname full);
          let oc = open_out full in
          output_string oc content;
          close_out oc)
        files;
      f dir)

(* A well-behaved one-module lib/ tree (documented .mli, no findings)
   that pragmas and allowlist lines can be grafted onto. *)
let base_mod body =
  [
    ("lib/mod.ml", body);
    ("lib/mod.mli", "val f : int -> int\n(** Documented. *)\n");
  ]

let audit_triples ?(allow_lines = []) ?rules ~body () =
  with_temp_tree (base_mod body) (fun root ->
      let allow = Lint.allowlist_of_lines allow_lines in
      let report = Driver.run ?rules ~root ~allow () in
      List.map
        (fun (f : Lint.finding) -> (f.file, f.line, Lint.rule_name f.rule))
        report.Driver.findings)

let d11_flags_stale_pragma () =
  check triples "pragma that suppresses nothing becomes a finding"
    [ ("lib/mod.ml", 1, "D11") ]
    (audit_triples
       ~body:"(* lint: allow D2 — nothing here reads a clock *)\nlet f x = x + 1\n"
       ())

let d11_flags_stale_allowlist_entry () =
  check triples "allowlist entry that suppresses nothing becomes a finding"
    [ ("tool/lint/allowlist.txt", 2, "D11") ]
    (audit_triples ~allow_lines:[ "# header"; "D2 bin/ghost.ml" ]
       ~body:"let f x = x + 1\n" ())

let d11_spares_used_suppressions () =
  check triples "used pragma and used entry are not stale" []
    (audit_triples
       ~allow_lines:[ "D6 lib/mod.ml" ]
       ~body:
         "let f x = x + 1\n\
          (* lint: allow D2 — deliberate: injected clock base *)\n\
          let now = Unix.time ()\n\
          let noisy () = print_endline \"x\"\n"
       ())

let d11_is_tier_aware () =
  (* A D9 pragma cannot be judged stale by an untyped run: the rule
     never executed on that file. *)
  check triples "typed-rule pragma survives an untyped run" []
    (audit_triples
       ~body:"(* lint: allow D9 — typed-tier suppression *)\nlet f x = x + 1\n"
       ())

let d11_is_unsuppressible () =
  (* Neither a pragma nor an allowlist entry can silence D11 itself;
     the D11 entry is then stale by construction. *)
  check triples "D11 cannot be allowlisted away"
    [ ("lib/mod.ml", 1, "D11"); ("tool/lint/allowlist.txt", 1, "D11") ]
    (audit_triples ~allow_lines:[ "D11 lib/mod.ml" ]
       ~body:"(* lint: allow D2 — stale on purpose *)\nlet f x = x + 1\n"
       ())

let d11_off_when_not_requested () =
  check triples "omitting D11 from --rules disables the audit" []
    (audit_triples
       ~rules:[ Lint.D1; Lint.D2; Lint.D5; Lint.D6 ]
       ~body:"(* lint: allow D2 — stale on purpose *)\nlet f x = x + 1\n"
       ())

(* --- Basalt_check properties --- *)

module Check = Basalt_check.Check
module Gen = Check.Gen

let prop_pragma_position =
  Check.prop ~name:"pragma suppression is line-position sensitive"
    ~count:200
    ~print:(fun (gap, same_line) ->
      Printf.sprintf "gap=%d same_line=%b" gap same_line)
    (Gen.pair (Gen.nat ~max:4) Gen.bool)
    (fun (gap, same_line) ->
      (* A pragma covers its own lines and the line directly below —
         nothing further, whatever the gap. *)
      let source =
        if same_line then "let f a b = a = b (* lint: allow D4 — t *)\n"
        else
          "(* lint: allow D4 — t *)\n"
          ^ String.concat "" (List.init gap (fun _ -> "\n"))
          ^ "let f a b = a = b\n"
      in
      let findings =
        Lint.lint_source ~rel_path:"lib/basalt_core/x.ml"
          ~allow:Lint.empty_allowlist source
      in
      (findings = []) = (same_line || gap = 0))

(* Each unit's verdict must be a function of that unit alone: linting
   leans on compiler-libs (a global lexer comment buffer among other
   state), so re-linting the same fixtures in a random order and getting
   identical verdicts pins the isolation. *)
let shuffle_fixtures =
  [
    ("lib/proto/s1.ml", "let f () = Random.int 3\n",
     [ ("lib/proto/s1.ml", 1, "D1") ]);
    ("lib/engine/s2.ml", "let t = Unix.time ()\n",
     [ ("lib/engine/s2.ml", 1, "D2") ]);
    ("test/s3.ml", "let h x = Hashtbl.hash x\n",
     [ ("test/s3.ml", 1, "D3") ]);
    ("lib/basalt_core/s4.ml", "let f a b = a = b\n",
     [ ("lib/basalt_core/s4.ml", 1, "D4") ]);
    ("lib/codec/s5.ml", "let f () = print_endline \"x\"\n",
     [ ("lib/codec/s5.ml", 1, "D6") ]);
    ("bin/s6.ml", "let c = Atomic.make 0\n",
     [ ("bin/s6.ml", 1, "D7") ]);
    ("lib/graph/s7.ml", "module O = Basalt_obs.Obs\n",
     [ ("lib/graph/s7.ml", 1, "D8") ]);
    ("lib/sim/s8.ml", "(* lint: allow D7 — t *)\nlet m = Mutex.create ()\n",
     []);
    ("lib/analysis/s9.ml", "let x = 1\n", []);
  ]

let prop_shuffle_invariance =
  let n = List.length shuffle_fixtures in
  Check.prop ~name:"verdicts survive fixture shuffling" ~count:100
    ~print:(fun keys -> String.concat "," (List.map string_of_int keys))
    (Gen.list_repeat n (Gen.int_range 0 1_000_000))
    (fun keys ->
      let order =
        List.map snd
          (List.sort compare (List.combine keys (List.init n Fun.id)))
      in
      List.for_all
        (fun i ->
          let rel_path, source, expected = List.nth shuffle_fixtures i in
          lint ~rel_path source = expected)
        order)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "D1 flags Random" `Quick d1_flags_random;
          Alcotest.test_case "D1 exempts lib/prng" `Quick d1_exempts_prng;
          Alcotest.test_case "D2 flags wall clocks" `Quick d2_flags_wall_clocks;
          Alcotest.test_case "D2 respects allowlist" `Quick d2_respects_allowlist;
          Alcotest.test_case "D3 flags Hashtbl.hash" `Quick d3_flags_hashtbl_hash;
          Alcotest.test_case "D4 flags poly compare" `Quick d4_flags_poly_compare;
          Alcotest.test_case "D4 allows primitive operands" `Quick
            d4_allows_primitive_operands;
          Alcotest.test_case "D4 scoped to protocol libs" `Quick
            d4_out_of_scope_dirs;
          Alcotest.test_case "D5 flags missing docs" `Quick d5_flags_missing_doc;
          Alcotest.test_case "D5 scoped to lib mli" `Quick d5_scope_is_lib_mli;
          Alcotest.test_case "D6 flags console output" `Quick d6_flags_printf;
          Alcotest.test_case "D6 scoped outside experiments" `Quick
            d6_scope_excludes_experiments;
          Alcotest.test_case "D7 flags concurrency primitives" `Quick
            d7_flags_concurrency;
          Alcotest.test_case "D7 exempts lib/parallel" `Quick
            d7_exempts_lib_parallel;
          Alcotest.test_case "D8 flags Basalt_obs references" `Quick
            d8_flags_obs_references;
          Alcotest.test_case "D8 exempts lib/obs + allowlist" `Quick
            d8_exempts_lib_obs_and_allowlist;
        ] );
      ( "typed rules",
        [
          Alcotest.test_case "D9 flags the PR 5 fold eviction" `Quick
            d9_flags_fold_evict;
          Alcotest.test_case "D9 clean on sorted eviction" `Quick
            d9_sorted_version_is_clean;
          Alcotest.test_case "D9 flags unsorted taint" `Quick
            d9_flags_unsorted_taint;
          Alcotest.test_case "D9 flags telemetry in fold" `Quick
            d9_flags_obs_emission;
          Alcotest.test_case "D10 flags two callees" `Quick
            d10_flags_two_callees;
          Alcotest.test_case "D10 clean with splits" `Quick
            d10_split_version_is_clean;
          Alcotest.test_case "D10 flags closure capture" `Quick
            d10_flags_closure_capture;
          Alcotest.test_case "D10 scoped to lib" `Quick d10_scope_is_lib;
          Alcotest.test_case "typed findings are raw" `Quick
            typed_pragmas_need_the_driver;
          Alcotest.test_case "CLI typed fixtures" `Quick cli_typed_fixtures;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "pragmas" `Quick pragma_suppresses;
          Alcotest.test_case "allowlist parsing" `Quick allowlist_parsing;
          Alcotest.test_case "allowlist path normalization" `Quick
            allowlist_path_normalization;
          Alcotest.test_case "allowlist rejects duplicates" `Quick
            allowlist_rejects_duplicates;
          Alcotest.test_case "parse errors" `Quick parse_error_reported;
        ] );
      ( "stale suppressions (D11)",
        [
          Alcotest.test_case "stale pragma flagged" `Quick
            d11_flags_stale_pragma;
          Alcotest.test_case "stale allowlist entry flagged" `Quick
            d11_flags_stale_allowlist_entry;
          Alcotest.test_case "used suppressions spared" `Quick
            d11_spares_used_suppressions;
          Alcotest.test_case "tier-aware" `Quick d11_is_tier_aware;
          Alcotest.test_case "unsuppressible" `Quick d11_is_unsuppressible;
          Alcotest.test_case "off when not requested" `Quick
            d11_off_when_not_requested;
        ] );
      Check.suite "properties" [ prop_pragma_position; prop_shuffle_invariance ];
      ( "repository",
        [
          Alcotest.test_case "whole repo clean" `Quick whole_repo_is_clean;
          Alcotest.test_case "CLI flags fixtures" `Quick cli_flags_fixtures;
          Alcotest.test_case "CLI clean repo exits 0" `Quick
            cli_clean_repo_exits_zero;
        ] );
    ]
