(* Tests for basalt.proto: node ids, messages, view operations, RPS. *)

open Basalt_proto

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let id = Node_id.of_int

(* --- Node_id --- *)

let node_id_round_trip () =
  check_int "round trip" 42 (Node_id.to_int (Node_id.of_int 42))

let node_id_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Node_id.of_int: negative id")
    (fun () -> ignore (Node_id.of_int (-1)))

let node_id_equal_compare () =
  check_bool "equal" true (Node_id.equal (id 3) (id 3));
  check_bool "not equal" false (Node_id.equal (id 3) (id 4));
  check_bool "compare" true (Node_id.compare (id 3) (id 4) < 0);
  check_int "hash" 5 (Node_id.hash (id 5))

let node_id_range () =
  let r = Node_id.range 4 in
  check_int "length" 4 (Array.length r);
  Array.iteri (fun i x -> check_int "dense" i (Node_id.to_int x)) r

let node_id_pp () =
  Alcotest.(check string) "pp" "n7" (Format.asprintf "%a" Node_id.pp (id 7))

(* --- Message --- *)

let message_kinds () =
  Alcotest.(check string) "pull" "pull" (Message.kind Message.Pull_request);
  Alcotest.(check string) "pull-reply" "pull-reply"
    (Message.kind (Message.Pull_reply [||]));
  Alcotest.(check string) "push" "push" (Message.kind (Message.Push [||]));
  Alcotest.(check string) "push-id" "push-id"
    (Message.kind (Message.Push_id (id 0)))

let message_payloads () =
  check_int "pull" 0 (Message.payload_ids Message.Pull_request);
  check_int "push of 3" 3 (Message.payload_ids (Message.Push [| id 1; id 2; id 3 |]));
  check_int "push-id" 1 (Message.payload_ids (Message.Push_id (id 9)))

let message_wire_size () =
  (* 200 ids at 4 bytes + 4-byte header fits a 1500-byte MTU: the paper's
     communication-budget argument. *)
  let view = Array.init 200 id in
  check_int "200-id view" 804 (Message.bytes_on_wire (Message.Push view));
  check_bool "fits MTU" true (Message.bytes_on_wire (Message.Push view) <= 1500);
  check_int "custom id size" 20
    (Message.bytes_on_wire ~id_size:8 (Message.Push [| id 1; id 2 |]))

let message_pp () =
  Alcotest.(check string) "pp push" "PUSH[2 ids]"
    (Format.asprintf "%a" Message.pp (Message.Push [| id 1; id 2 |]))

(* --- View_ops --- *)

let view = [| id 0; id 1; id 2; id 1; id 4 |]

let view_count () =
  check_int "evens" 3
    (View_ops.count (fun x -> Node_id.to_int x mod 2 = 0) view)

let view_proportion () =
  Alcotest.(check (float 1e-9)) "proportion" 0.6
    (View_ops.proportion (fun x -> Node_id.to_int x mod 2 = 0) view);
  Alcotest.(check (float 1e-9)) "empty" 0.0
    (View_ops.proportion (fun _ -> true) [||])

let view_distinct () =
  let d = View_ops.distinct view in
  check_int "dedup size" 4 (Array.length d);
  Alcotest.(check (list int))
    "order preserved" [ 0; 1; 2; 4 ]
    (Array.to_list (Array.map Node_id.to_int d))

let view_contains () =
  check_bool "member" true (View_ops.contains view (id 4));
  check_bool "non-member" false (View_ops.contains view (id 9))

let view_random_member () =
  let rng = Basalt_prng.Rng.create ~seed:1 in
  check_bool "empty none" true (View_ops.random_member rng [||] = None);
  match View_ops.random_member rng view with
  | Some m -> check_bool "member of view" true (View_ops.contains view m)
  | None -> Alcotest.fail "expected a member"

let view_random_subset () =
  let rng = Basalt_prng.Rng.create ~seed:2 in
  let s = View_ops.random_subset rng ~k:3 view in
  check_int "size" 3 (Array.length s);
  Array.iter (fun x -> check_bool "member" true (View_ops.contains view x)) s;
  check_int "k > size clamps" 5 (Array.length (View_ops.random_subset rng ~k:100 view))

let view_union () =
  let u = View_ops.union [ [| id 1; id 2 |]; [| id 2; id 3 |] ] in
  Alcotest.(check (list int))
    "union dedup" [ 1; 2; 3 ]
    (Array.to_list (Array.map Node_id.to_int u))

(* --- Rps --- *)

let rps_null () =
  let s = Rps.null (id 5) in
  Alcotest.(check string) "name" "null" s.Rps.protocol;
  check_int "node" 5 (Node_id.to_int s.Rps.node);
  s.Rps.on_round ();
  s.Rps.on_message ~from:(id 1) Message.Pull_request;
  check_bool "no samples" true (s.Rps.sample_tick () = []);
  check_int "empty view" 0 (Array.length (s.Rps.current_view ()))

module Check = Basalt_check.Check
module Gen = Check.Gen
module Print = Check.Print

let print_ids = Print.list Print.int
let small_nats = Gen.list ~max_len:40 (Gen.nat ~max:100)

let prop_distinct_is_distinct =
  Check.prop ~name:"distinct removes all duplicates" ~count:300
    ~print:print_ids small_nats
    (fun l ->
      let view = Array.of_list (List.map Node_id.of_int l) in
      let d = View_ops.distinct view in
      let ints = Array.to_list (Array.map Node_id.to_int d) in
      List.sort_uniq Int.compare ints = List.sort Int.compare ints)

let prop_distinct_preserves_first_occurrence =
  Check.prop ~name:"distinct keeps first occurrences in order" ~count:300
    ~print:print_ids small_nats
    (fun l ->
      let view = Array.of_list (List.map Node_id.of_int l) in
      let d = Array.to_list (Array.map Node_id.to_int (View_ops.distinct view)) in
      let rec first_occurrences seen = function
        | [] -> []
        | x :: rest ->
            if List.mem x seen then first_occurrences seen rest
            else x :: first_occurrences (x :: seen) rest
      in
      d = first_occurrences [] l)

let prop_subset_members =
  Check.prop ~name:"random_subset returns members" ~count:300
    ~print:(Print.pair Print.int print_ids)
    (Gen.pair (Gen.nat ~max:10_000) small_nats)
    (fun (seed, l) ->
      let rng = Basalt_prng.Rng.create ~seed in
      let view = Array.of_list (List.map Node_id.of_int l) in
      let s = View_ops.random_subset rng ~k:3 view in
      Array.for_all (View_ops.contains view) s)

let () =
  Alcotest.run "proto"
    [
      ( "node_id",
        [
          Alcotest.test_case "round trip" `Quick node_id_round_trip;
          Alcotest.test_case "negative" `Quick node_id_negative;
          Alcotest.test_case "equal/compare/hash" `Quick node_id_equal_compare;
          Alcotest.test_case "range" `Quick node_id_range;
          Alcotest.test_case "pp" `Quick node_id_pp;
        ] );
      ( "message",
        [
          Alcotest.test_case "kinds" `Quick message_kinds;
          Alcotest.test_case "payloads" `Quick message_payloads;
          Alcotest.test_case "wire size" `Quick message_wire_size;
          Alcotest.test_case "pp" `Quick message_pp;
        ] );
      ( "view_ops",
        [
          Alcotest.test_case "count" `Quick view_count;
          Alcotest.test_case "proportion" `Quick view_proportion;
          Alcotest.test_case "distinct" `Quick view_distinct;
          Alcotest.test_case "contains" `Quick view_contains;
          Alcotest.test_case "random member" `Quick view_random_member;
          Alcotest.test_case "random subset" `Quick view_random_subset;
          Alcotest.test_case "union" `Quick view_union;
        ] );
      ( "rps",
        [ Alcotest.test_case "null sampler" `Quick rps_null ] );
      Check.suite "properties"
        [
          prop_distinct_is_distinct;
          prop_distinct_preserves_first_occurrence;
          prop_subset_members;
        ];
    ]
