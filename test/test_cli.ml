(* Contract tests for the bin/repro command-line driver and the
   basalt-lint CLI, run as real subprocesses: automation (CI, the bench
   harness, shell scripts looping over targets) relies on exit codes,
   usage failures, and the machine-readable output schemas staying
   exactly as pinned here. *)

let repro = "../bin/repro.exe"

(* Runs [repro args], returning (exit_code, stdout, stderr). *)
let run_repro args =
  let out_file = Filename.temp_file "repro" ".out" in
  let err_file = Filename.temp_file "repro" ".err" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote repro) args
      (Filename.quote out_file) (Filename.quote err_file)
  in
  let code = Sys.command cmd in
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove path;
    s
  in
  (code, read_all out_file, read_all err_file)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let unknown_target_fails () =
  let code, _out, err = run_repro "no-such-target -s quick" in
  Alcotest.(check bool) "non-zero exit" true (code <> 0);
  Alcotest.(check bool) "usage on stderr" true
    (contains ~needle:"Usage" err || contains ~needle:"usage" err)

let unknown_option_fails () =
  let code, _out, err = run_repro "fig2a --no-such-flag" in
  Alcotest.(check bool) "non-zero exit" true (code <> 0);
  Alcotest.(check bool) "diagnostic on stderr" true (String.length err > 0)

let help_succeeds () =
  let code, out, _err = run_repro "--help=plain" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "lists targets" true (contains ~needle:"fig2a" out)

let subcommand_help_succeeds () =
  let code, _out, _err = run_repro "fig2a --help=plain" in
  Alcotest.(check int) "exit 0" 0 code

(* --- basalt-lint CLI --- *)

let lint = "../tool/lint/main.exe"

let run_lint args =
  let out_file = Filename.temp_file "lint" ".out" in
  let err_file = Filename.temp_file "lint" ".err" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote lint) args
      (Filename.quote out_file) (Filename.quote err_file)
  in
  let code = Sys.command cmd in
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove path;
    s
  in
  (code, read_all out_file, read_all err_file)

let fixture name = "../tool/lint/fixtures/" ^ name

let fold_evict_cmt =
  "../tool/lint/fixtures_typed/.lint_fixtures_typed.objs/byte/\
   lint_fixtures_typed__D9_fold_evict.cmt"

(* Exit code 0 = clean, 1 = findings, 2 = usage/parse error — scripts
   branch on the distinction, so each code is pinned separately. *)
let lint_exit_codes () =
  let code, out, _ = run_lint ("--rules D2 " ^ fixture "d1_random.ml") in
  Alcotest.(check int) "clean run exits 0" 0 code;
  Alcotest.(check string) "clean text output is empty" "" out;
  let code, _, _ = run_lint (fixture "d1_random.ml") in
  Alcotest.(check int) "findings exit 1" 1 code;
  let code, _, err = run_lint "--format bogus" in
  Alcotest.(check int) "unknown format exits 2" 2 code;
  Alcotest.(check bool) "diagnostic on stderr" true (String.length err > 0);
  let code, _, _ = run_lint "--rules D42 ." in
  Alcotest.(check int) "unknown rule exits 2" 2 code;
  let code, _, _ = run_lint "--root /nonexistent-basalt" in
  Alcotest.(check int) "bad root exits 2" 2 code;
  let code, _, _ = run_lint "--cmt x.cmt foo.ml bar.ml" in
  Alcotest.(check int) "--cmt without --as exits 2" 2 code

(* The JSON schema is the machine interface CI archives; both the empty
   and non-empty shapes are pinned byte-for-byte / by fragment. *)
let lint_json_schema () =
  let code, out, _ =
    run_lint ("--format json --rules D2 " ^ fixture "d1_random.ml")
  in
  Alcotest.(check int) "clean exits 0" 0 code;
  Alcotest.(check string) "empty findings shape"
    "{\n  \"version\": 1,\n  \"findings\": []\n}\n" out;
  let code, out, _ =
    run_lint ("--format json --as lib/x.ml " ^ fixture "d1_random.ml")
  in
  Alcotest.(check int) "findings still exit 1" 1 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json contains " ^ needle) true
        (contains ~needle out))
    [
      "\"version\": 1";
      "\"findings\": [";
      "{\"file\": \"lib/x.ml\", \"line\": 2, \"rule\": \"D1\", \"message\": \"";
    ]

let lint_sarif_output () =
  let code, out, _ =
    run_lint ("--format sarif --as lib/x.ml " ^ fixture "d1_random.ml")
  in
  Alcotest.(check int) "findings exit 1" 1 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("sarif contains " ^ needle) true
        (contains ~needle out))
    [
      "\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\"";
      "\"version\": \"2.1.0\"";
      "\"name\": \"basalt-lint\"";
      "\"id\": \"D9\"";
      "\"ruleId\": \"D1\"";
      "\"artifactLocation\": {\"uri\": \"lib/x.ml\"}";
      "\"region\": {\"startLine\": 2}";
    ];
  (* A clean run still emits a structurally valid SARIF document. *)
  let code, out, _ =
    run_lint ("--format sarif --rules D2 " ^ fixture "d1_random.ml")
  in
  Alcotest.(check int) "clean exits 0" 0 code;
  Alcotest.(check bool) "empty results array" true
    (contains ~needle:"\"results\": []" out)

let lint_rules_filtering () =
  let typed_args rules =
    Printf.sprintf "--as lib/d9_fold_evict.ml --cmt %s --rules %s %s"
      fold_evict_cmt rules "../tool/lint/fixtures_typed/d9_fold_evict.ml"
  in
  let code, out, _ = run_lint (typed_args "D9,D10") in
  Alcotest.(check int) "D9 finding reported" 1 code;
  Alcotest.(check bool) "at the eviction line" true
    (contains ~needle:"lib/d9_fold_evict.ml:21:D9:" out);
  let code, out, _ = run_lint (typed_args "D10") in
  Alcotest.(check int) "D10-only run is clean" 0 code;
  Alcotest.(check string) "and silent" "" out

let () =
  Alcotest.run "cli"
    [
      ( "repro",
        [
          Alcotest.test_case "unknown target fails" `Quick unknown_target_fails;
          Alcotest.test_case "unknown option fails" `Quick unknown_option_fails;
          Alcotest.test_case "--help succeeds" `Quick help_succeeds;
          Alcotest.test_case "subcommand --help succeeds" `Quick
            subcommand_help_succeeds;
        ] );
      ( "lint",
        [
          Alcotest.test_case "exit codes" `Quick lint_exit_codes;
          Alcotest.test_case "json schema" `Quick lint_json_schema;
          Alcotest.test_case "sarif output" `Quick lint_sarif_output;
          Alcotest.test_case "--rules filtering" `Quick lint_rules_filtering;
        ] );
    ]
