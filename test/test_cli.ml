(* Contract tests for the bin/repro command-line driver, run as a real
   subprocess: automation (CI, the bench harness, shell scripts looping
   over targets) relies on unknown targets failing loudly with a usage
   message rather than exiting 0. *)

let repro = "../bin/repro.exe"

(* Runs [repro args], returning (exit_code, stdout, stderr). *)
let run_repro args =
  let out_file = Filename.temp_file "repro" ".out" in
  let err_file = Filename.temp_file "repro" ".err" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote repro) args
      (Filename.quote out_file) (Filename.quote err_file)
  in
  let code = Sys.command cmd in
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove path;
    s
  in
  (code, read_all out_file, read_all err_file)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let unknown_target_fails () =
  let code, _out, err = run_repro "no-such-target -s quick" in
  Alcotest.(check bool) "non-zero exit" true (code <> 0);
  Alcotest.(check bool) "usage on stderr" true
    (contains ~needle:"Usage" err || contains ~needle:"usage" err)

let unknown_option_fails () =
  let code, _out, err = run_repro "fig2a --no-such-flag" in
  Alcotest.(check bool) "non-zero exit" true (code <> 0);
  Alcotest.(check bool) "diagnostic on stderr" true (String.length err > 0)

let help_succeeds () =
  let code, out, _err = run_repro "--help=plain" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "lists targets" true (contains ~needle:"fig2a" out)

let subcommand_help_succeeds () =
  let code, _out, _err = run_repro "fig2a --help=plain" in
  Alcotest.(check int) "exit 0" 0 code

let () =
  Alcotest.run "cli"
    [
      ( "repro",
        [
          Alcotest.test_case "unknown target fails" `Quick unknown_target_fails;
          Alcotest.test_case "unknown option fails" `Quick unknown_option_fails;
          Alcotest.test_case "--help succeeds" `Quick help_succeeds;
          Alcotest.test_case "subcommand --help succeeds" `Quick
            subcommand_help_succeeds;
        ] );
    ]
