(* Contract tests for the bin/repro command-line driver and the
   basalt-lint CLI, run as real subprocesses: automation (CI, the bench
   harness, shell scripts looping over targets) relies on exit codes,
   usage failures, and the machine-readable output schemas staying
   exactly as pinned here. *)

let repro = "../bin/repro.exe"

(* Runs [repro args], returning (exit_code, stdout, stderr). *)
let run_repro args =
  let out_file = Filename.temp_file "repro" ".out" in
  let err_file = Filename.temp_file "repro" ".err" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote repro) args
      (Filename.quote out_file) (Filename.quote err_file)
  in
  let code = Sys.command cmd in
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove path;
    s
  in
  (code, read_all out_file, read_all err_file)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let unknown_target_fails () =
  let code, _out, err = run_repro "no-such-target -s quick" in
  Alcotest.(check bool) "non-zero exit" true (code <> 0);
  Alcotest.(check bool) "usage on stderr" true
    (contains ~needle:"Usage" err || contains ~needle:"usage" err)

let unknown_option_fails () =
  let code, _out, err = run_repro "fig2a --no-such-flag" in
  Alcotest.(check bool) "non-zero exit" true (code <> 0);
  Alcotest.(check bool) "diagnostic on stderr" true (String.length err > 0)

let help_succeeds () =
  let code, out, _err = run_repro "--help=plain" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "lists targets" true (contains ~needle:"fig2a" out)

let subcommand_help_succeeds () =
  let code, _out, _err = run_repro "fig2a --help=plain" in
  Alcotest.(check int) "exit 0" 0 code

(* --- repro matrix: scenario-file exit codes (DESIGN.md §12) --- *)

(* Scripts looping over scenario files branch on these: 3 = unreadable
   file, 4 = parse/validation error, 5 = unwritable output path. *)

let scenarios = "../scenarios/"

let matrix_missing_file_exits_3 () =
  let code, _out, err = run_repro ("matrix " ^ scenarios ^ "missing.scn") in
  Alcotest.(check int) "exit 3" 3 code;
  Alcotest.(check bool) "names the path" true
    (contains ~needle:"repro matrix: cannot read" err
    && contains ~needle:"missing.scn" err)

let matrix_invalid_file_exits_4 () =
  let code, _out, err =
    run_repro ("matrix " ^ scenarios ^ "corpus/bad_number.scn")
  in
  Alcotest.(check int) "exit 4" 4 code;
  Alcotest.(check bool) "positioned diagnostic" true
    (contains ~needle:"corpus/bad_number.scn:2:12: bad number '0.x'" err)

(* The output-path probe must fail fast — before any simulation runs —
   for both the matrix driver and the hand-written timed targets. *)
let unwritable_trace_exits_5 () =
  List.iter
    (fun target ->
      let code, _out, err =
        run_repro (target ^ " --trace /nonexistent-basalt/t.jsonl")
      in
      Alcotest.(check int) (target ^ " exit 5") 5 code;
      Alcotest.(check bool) (target ^ " names the path") true
        (contains ~needle:"repro: cannot write trace file /nonexistent-basalt/t.jsonl"
           err))
    [ "matrix " ^ scenarios ^ "smoke.scn"; "cost -s quick" ]

let unwritable_csv_exits_5 () =
  let code, _out, err =
    run_repro ("matrix " ^ scenarios ^ "smoke.scn --csv /proc/nope")
  in
  Alcotest.(check int) "exit 5" 5 code;
  Alcotest.(check bool) "names the directory" true
    (contains ~needle:"repro: cannot write csv directory /proc/nope" err)

(* --- repro matrix: determinism and hand-written equivalence --- *)

(* Strips the banner/footer lines that mention wall-clock or file
   paths, leaving the table body the assertions compare. *)
let table_body out =
  String.split_on_char '\n' out
  |> List.filter (fun l ->
         not
           (String.length l > 0
           && (l.[0] = '=' || l.[0] = '[' || l.[0] = '(')))
  |> String.concat "\n"

let matrix_j_determinism () =
  let code1, out1, _ = run_repro ("matrix " ^ scenarios ^ "smoke.scn -j 1") in
  let code2, out2, _ = run_repro ("matrix " ^ scenarios ^ "smoke.scn -j 2") in
  Alcotest.(check int) "-j 1 exit 0" 0 code1;
  Alcotest.(check int) "-j 2 exit 0" 0 code2;
  Alcotest.(check string) "tables bit-identical" (table_body out1)
    (table_body out2)

(* The committed robustness_net.scn reproduces the hand-written
   experiment's table byte-for-byte (ISSUE acceptance; ~25 s, so
   `Slow — skipped under -q). *)
let matrix_reproduces_hand_written () =
  let code_h, out_h, _ = run_repro "robustness-net -s quick" in
  let code_m, out_m, _ =
    run_repro ("matrix " ^ scenarios ^ "robustness_net.scn -s quick")
  in
  Alcotest.(check int) "hand-written exit 0" 0 code_h;
  Alcotest.(check int) "matrix exit 0" 0 code_m;
  Alcotest.(check string) "tables byte-identical" (table_body out_h)
    (table_body out_m)

(* --- bench_gate subcommands --- *)

let bench_gate = "../tool/bench_gate/main.exe"

let run_gate args =
  let out_file = Filename.temp_file "gate" ".out" in
  let err_file = Filename.temp_file "gate" ".err" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote bench_gate) args
      (Filename.quote out_file) (Filename.quote err_file)
  in
  let code = Sys.command cmd in
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove path;
    s
  in
  (code, read_all out_file, read_all err_file)

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let bench_current ns =
  Printf.sprintf "{\"unit\": \"ns/run\", \"groups\": {\"g\": {\"t\": %s}}}" ns

(* `append` emits the documented one-line record; the schema is pinned
   byte-for-byte because CI artifacts accumulate these lines across
   runs and `report` must keep reading old ones. *)
let gate_append_record_pinned () =
  let cur = Filename.temp_file "bench" ".json" in
  let hist = Filename.temp_file "bench" ".jsonl" in
  Sys.remove hist;
  write_file cur (bench_current "100.5");
  let code, _out, _ =
    Printf.ksprintf run_gate "append --history %s --current %s --label base"
      (Filename.quote hist) (Filename.quote cur)
  in
  Alcotest.(check int) "append exit 0" 0 code;
  let ic = open_in_bin hist in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "record schema"
    "{\"version\":1,\"label\":\"base\",\"unit\":\"ns/run\",\"groups\":{\"g\":{\"t\":100.5}}}"
    line;
  Sys.remove cur;
  Sys.remove hist

(* `report` trends the history and flags last/best over tolerance; it
   stays informational (exit 0) either way. *)
let gate_report_flags_regression () =
  let hist = Filename.temp_file "bench" ".jsonl" in
  write_file hist
    ("{\"version\":1,\"label\":\"a\",\"unit\":\"ns/run\",\"groups\":{\"g\":{\"t\":100}}}\n"
   ^ "{\"version\":1,\"label\":\"b\",\"unit\":\"ns/run\",\"groups\":{\"g\":{\"t\":450}}}\n");
  let code, out, _ =
    Printf.ksprintf run_gate "report --history %s" (Filename.quote hist)
  in
  Alcotest.(check int) "informational exit 0" 0 code;
  Alcotest.(check bool) "lists both runs" true (contains ~needle:"a, b" out);
  Alcotest.(check bool) "flags the 4.5x entry" true
    (contains ~needle:"REGR" out);
  let code, out, _ =
    Printf.ksprintf run_gate "report --history %s --tolerance 5"
      (Filename.quote hist)
  in
  Alcotest.(check int) "looser tolerance exit 0" 0 code;
  Alcotest.(check bool) "no flag under tolerance" true
    (not (contains ~needle:"REGR" out));
  Sys.remove hist

let gate_report_rejects_malformed () =
  let hist = Filename.temp_file "bench" ".jsonl" in
  write_file hist
    "{\"version\":1,\"label\":\"a\",\"unit\":\"ns/run\",\"groups\":{\"g\":{\"t\":100}}}\nnot json\n";
  let code, _out, err =
    Printf.ksprintf run_gate "report --history %s" (Filename.quote hist)
  in
  Alcotest.(check int) "malformed exits 2" 2 code;
  Alcotest.(check bool) "line number in diagnostic" true
    (contains ~needle:":2:" err);
  Sys.remove hist

(* The pre-subcommand CI spelling must keep working. *)
let gate_legacy_spelling () =
  let cur = Filename.temp_file "bench" ".json" in
  write_file cur (bench_current "100");
  let code, out, _ =
    Printf.ksprintf run_gate "--baseline %s --current %s" (Filename.quote cur)
      (Filename.quote cur)
  in
  Alcotest.(check int) "legacy gate exit 0" 0 code;
  Alcotest.(check bool) "compared something" true
    (contains ~needle:"1 compared, 0 regressions" out);
  let code, _out, _ =
    Printf.ksprintf run_gate "gate --baseline %s --current %s"
      (Filename.quote cur) (Filename.quote cur)
  in
  Alcotest.(check int) "explicit gate exit 0" 0 code;
  let code, _out, err = run_gate "frobnicate" in
  Alcotest.(check int) "unknown subcommand exits 2" 2 code;
  Alcotest.(check bool) "usage on stderr" true (contains ~needle:"usage" err);
  Sys.remove cur

(* --- basalt-lint CLI --- *)

let lint = "../tool/lint/main.exe"

let run_lint args =
  let out_file = Filename.temp_file "lint" ".out" in
  let err_file = Filename.temp_file "lint" ".err" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote lint) args
      (Filename.quote out_file) (Filename.quote err_file)
  in
  let code = Sys.command cmd in
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove path;
    s
  in
  (code, read_all out_file, read_all err_file)

let fixture name = "../tool/lint/fixtures/" ^ name

let fold_evict_cmt =
  "../tool/lint/fixtures_typed/.lint_fixtures_typed.objs/byte/\
   lint_fixtures_typed__D9_fold_evict.cmt"

(* Exit code 0 = clean, 1 = findings, 2 = usage/parse error — scripts
   branch on the distinction, so each code is pinned separately. *)
let lint_exit_codes () =
  let code, out, _ = run_lint ("--rules D2 " ^ fixture "d1_random.ml") in
  Alcotest.(check int) "clean run exits 0" 0 code;
  Alcotest.(check string) "clean text output is empty" "" out;
  let code, _, _ = run_lint (fixture "d1_random.ml") in
  Alcotest.(check int) "findings exit 1" 1 code;
  let code, _, err = run_lint "--format bogus" in
  Alcotest.(check int) "unknown format exits 2" 2 code;
  Alcotest.(check bool) "diagnostic on stderr" true (String.length err > 0);
  let code, _, _ = run_lint "--rules D42 ." in
  Alcotest.(check int) "unknown rule exits 2" 2 code;
  let code, _, _ = run_lint "--root /nonexistent-basalt" in
  Alcotest.(check int) "bad root exits 2" 2 code;
  let code, _, _ = run_lint "--cmt x.cmt foo.ml bar.ml" in
  Alcotest.(check int) "--cmt without --as exits 2" 2 code

(* The JSON schema is the machine interface CI archives; both the empty
   and non-empty shapes are pinned byte-for-byte / by fragment. *)
let lint_json_schema () =
  let code, out, _ =
    run_lint ("--format json --rules D2 " ^ fixture "d1_random.ml")
  in
  Alcotest.(check int) "clean exits 0" 0 code;
  Alcotest.(check string) "empty findings shape"
    "{\n  \"version\": 1,\n  \"findings\": []\n}\n" out;
  let code, out, _ =
    run_lint ("--format json --as lib/x.ml " ^ fixture "d1_random.ml")
  in
  Alcotest.(check int) "findings still exit 1" 1 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json contains " ^ needle) true
        (contains ~needle out))
    [
      "\"version\": 1";
      "\"findings\": [";
      "{\"file\": \"lib/x.ml\", \"line\": 2, \"rule\": \"D1\", \"message\": \"";
    ]

let lint_sarif_output () =
  let code, out, _ =
    run_lint ("--format sarif --as lib/x.ml " ^ fixture "d1_random.ml")
  in
  Alcotest.(check int) "findings exit 1" 1 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("sarif contains " ^ needle) true
        (contains ~needle out))
    [
      "\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\"";
      "\"version\": \"2.1.0\"";
      "\"name\": \"basalt-lint\"";
      "\"id\": \"D9\"";
      "\"ruleId\": \"D1\"";
      "\"artifactLocation\": {\"uri\": \"lib/x.ml\"}";
      "\"region\": {\"startLine\": 2}";
    ];
  (* A clean run still emits a structurally valid SARIF document. *)
  let code, out, _ =
    run_lint ("--format sarif --rules D2 " ^ fixture "d1_random.ml")
  in
  Alcotest.(check int) "clean exits 0" 0 code;
  Alcotest.(check bool) "empty results array" true
    (contains ~needle:"\"results\": []" out)

let lint_rules_filtering () =
  let typed_args rules =
    Printf.sprintf "--as lib/d9_fold_evict.ml --cmt %s --rules %s %s"
      fold_evict_cmt rules "../tool/lint/fixtures_typed/d9_fold_evict.ml"
  in
  let code, out, _ = run_lint (typed_args "D9,D10") in
  Alcotest.(check int) "D9 finding reported" 1 code;
  Alcotest.(check bool) "at the eviction line" true
    (contains ~needle:"lib/d9_fold_evict.ml:21:D9:" out);
  let code, out, _ = run_lint (typed_args "D10") in
  Alcotest.(check int) "D10-only run is clean" 0 code;
  Alcotest.(check string) "and silent" "" out

let () =
  Alcotest.run "cli"
    [
      ( "repro",
        [
          Alcotest.test_case "unknown target fails" `Quick unknown_target_fails;
          Alcotest.test_case "unknown option fails" `Quick unknown_option_fails;
          Alcotest.test_case "--help succeeds" `Quick help_succeeds;
          Alcotest.test_case "subcommand --help succeeds" `Quick
            subcommand_help_succeeds;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "missing file exits 3" `Quick
            matrix_missing_file_exits_3;
          Alcotest.test_case "invalid file exits 4" `Quick
            matrix_invalid_file_exits_4;
          Alcotest.test_case "unwritable trace exits 5" `Quick
            unwritable_trace_exits_5;
          Alcotest.test_case "unwritable csv exits 5" `Quick
            unwritable_csv_exits_5;
          Alcotest.test_case "-j determinism" `Quick matrix_j_determinism;
          Alcotest.test_case "reproduces hand-written table" `Slow
            matrix_reproduces_hand_written;
        ] );
      ( "bench_gate",
        [
          Alcotest.test_case "append record pinned" `Quick
            gate_append_record_pinned;
          Alcotest.test_case "report flags regressions" `Quick
            gate_report_flags_regression;
          Alcotest.test_case "report rejects malformed history" `Quick
            gate_report_rejects_malformed;
          Alcotest.test_case "legacy gate spelling" `Quick gate_legacy_spelling;
        ] );
      ( "lint",
        [
          Alcotest.test_case "exit codes" `Quick lint_exit_codes;
          Alcotest.test_case "json schema" `Quick lint_json_schema;
          Alcotest.test_case "sarif output" `Quick lint_sarif_output;
          Alcotest.test_case "--rules filtering" `Quick lint_rules_filtering;
        ] );
    ]
