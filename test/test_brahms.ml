(* Tests for basalt.brahms: config, view reconstruction, samplers,
   multi-shot extension, blocking. *)

open Basalt_brahms
module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message
module View_ops = Basalt_proto.View_ops

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let id = Node_id.of_int
let rng () = Basalt_prng.Rng.create ~seed:99

(* --- Config --- *)

let config_defaults () =
  let c = Brahms_config.default in
  check_int "l" 160 c.Brahms_config.l;
  Alcotest.(check (float 1e-9)) "alpha" (1.0 /. 3.0) c.Brahms_config.alpha;
  check_bool "blocking off" true (c.Brahms_config.push_limit = None);
  check_int "k = l/2" 80 c.Brahms_config.k

let config_validation () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Brahms_config.make: l must be positive" (fun () ->
      ignore (Brahms_config.make ~l:0 ()));
  expect "Brahms_config.make: weights must sum to 1" (fun () ->
      ignore (Brahms_config.make ~alpha:0.5 ~beta:0.5 ~gamma:0.5 ()));
  expect "Brahms_config.make: negative weight" (fun () ->
      ignore (Brahms_config.make ~alpha:(-0.5) ~beta:1.0 ~gamma:0.5 ()));
  expect "Brahms_config.make: k must be in [1, l]" (fun () ->
      ignore (Brahms_config.make ~l:4 ~k:5 ()))

let config_refresh () =
  let c = Brahms_config.make ~l:100 ~k:25 ~rho:0.5 () in
  Alcotest.(check (float 1e-9)) "k/rho" 50.0 (Brahms_config.refresh_interval c)

(* --- Brahms node --- *)

let capture () =
  let sent = ref [] in
  let send ~dst msg = sent := (dst, msg) :: !sent in
  (sent, send)

let make ?(l = 8) ?(k = 2) ?push_limit ?(bootstrap = Array.init 6 (fun i -> id (i + 1)))
    () =
  let sent, send = capture () in
  let t =
    Brahms.create
      ~config:(Brahms_config.make ~l ~k ?push_limit ())
      ~id:(id 0) ~bootstrap ~rng:(rng ()) ~send ()
  in
  (t, sent)

let brahms_bootstrap () =
  let t, _ = make () in
  check_bool "view from bootstrap" true (Array.length (Brahms.view t) > 0);
  Array.iter
    (fun p ->
      check_bool "no self" false (Node_id.equal p (id 0));
      check_bool "bootstrap member" true (Node_id.to_int p <= 6))
    (Brahms.view t)

let brahms_round_sends_push_id_and_pull () =
  let t, sent = make () in
  Brahms.on_round t;
  let kinds = List.map (fun (_, m) -> Message.kind m) !sent in
  check_int "two messages" 2 (List.length kinds);
  check_bool "push-id" true (List.mem "push-id" kinds);
  check_bool "pull" true (List.mem "pull" kinds);
  (* the push-id must carry the node's own identifier *)
  List.iter
    (fun (_, m) ->
      match m with
      | Message.Push_id p -> check_int "own id pushed" 0 (Node_id.to_int p)
      | _ -> ())
    !sent

let brahms_pull_answered_with_view () =
  let t, sent = make () in
  Brahms.on_message t ~from:(id 42) Message.Pull_request;
  match !sent with
  | [ (dst, Message.Pull_reply view) ] ->
      check_int "to requester" 42 (Node_id.to_int dst);
      check_int "carries current view" (Array.length (Brahms.view t))
        (Array.length view)
  | _ -> Alcotest.fail "expected pull reply"

let brahms_view_update_requires_both () =
  let t, _ = make () in
  let before = Brahms.view t in
  (* Only a pull reply: no rebuild. *)
  Brahms.on_message t ~from:(id 2) (Message.Pull_reply [| id 30; id 31 |]);
  Brahms.on_round t;
  Alcotest.(check (array int))
    "pull alone keeps view"
    (Array.map Node_id.to_int before)
    (Array.map Node_id.to_int (Brahms.view t));
  (* Now both channels: rebuild happens. *)
  Brahms.on_message t ~from:(id 30) (Message.Push_id (id 30));
  Brahms.on_message t ~from:(id 2) (Message.Pull_reply [| id 31; id 32 |]);
  Brahms.on_round t;
  let after = Brahms.view t in
  check_bool "view rebuilt from receipts" true
    (View_ops.contains after (id 30)
    || View_ops.contains after (id 31)
    || View_ops.contains after (id 32))

let brahms_push_only_no_update () =
  let t, _ = make () in
  let before = Brahms.view t in
  Brahms.on_message t ~from:(id 50) (Message.Push_id (id 50));
  Brahms.on_round t;
  Alcotest.(check (array int))
    "push alone keeps view"
    (Array.map Node_id.to_int before)
    (Array.map Node_id.to_int (Brahms.view t))

let brahms_blocking () =
  let t, _ = make ~push_limit:1 () in
  let before = Brahms.view t in
  (* Two pushes exceed the limit of 1: the round's update is vetoed. *)
  Brahms.on_message t ~from:(id 30) (Message.Push_id (id 30));
  Brahms.on_message t ~from:(id 31) (Message.Push_id (id 31));
  Brahms.on_message t ~from:(id 2) (Message.Pull_reply [| id 32 |]);
  Brahms.on_round t;
  check_int "blocked once" 1 (Brahms.blocked_rounds t);
  Alcotest.(check (array int))
    "view unchanged when blocked"
    (Array.map Node_id.to_int before)
    (Array.map Node_id.to_int (Brahms.view t))

let brahms_samplers_minwise () =
  let t, _ = make ~l:16 () in
  (* Feed a batch of ids through a push: samplers must absorb them. *)
  Brahms.on_message t ~from:(id 7) (Message.Push_id (id 7));
  let outputs = Brahms.sampler_outputs t in
  check_bool "samplers filled" true (Array.length outputs > 0);
  (* Stubbornness: replaying the same messages changes nothing. *)
  let before = Array.map Node_id.to_int outputs in
  Brahms.on_message t ~from:(id 7) (Message.Push_id (id 7));
  Alcotest.(check (array int))
    "stubborn" before
    (Array.map Node_id.to_int (Brahms.sampler_outputs t))

let brahms_multi_id_push_is_single () =
  let t, _ = make ~l:64 () in
  (* A forged multi-id push must contribute only the sender, per Brahms
     message syntax. *)
  Brahms.on_message t ~from:(id 70) (Message.Push (Array.init 50 (fun i -> id (100 + i))));
  let outputs = Brahms.sampler_outputs t in
  Array.iter
    (fun p ->
      check_bool "forged payload ignored" false (Node_id.to_int p >= 100))
    outputs

let brahms_sample_tick () =
  let t, _ = make ~l:8 ~k:3 () in
  let s = Brahms.sample_tick t in
  check_int "k samples" 3 (List.length s);
  (* After resetting all samplers in circles they keep producing as long
     as traffic refills them; with no traffic they dry out. *)
  let rec drain i acc =
    if i = 0 then acc else drain (i - 1) (acc + List.length (Brahms.sample_tick t))
  in
  let produced = drain 3 0 in
  check_bool "resets drain without refill" true (produced <= 8)

let brahms_message_budget_knobs () =
  let sent = ref [] in
  let send ~dst:_ msg = sent := msg :: !sent in
  let t =
    Brahms.create
      ~config:(Brahms_config.make ~l:8 ~pushes_per_round:3 ~pulls_per_round:2 ())
      ~id:(id 0)
      ~bootstrap:(Array.init 6 (fun i -> id (i + 1)))
      ~rng:(rng ()) ~send ()
  in
  Brahms.on_round t;
  let count kind =
    List.length (List.filter (fun m -> Message.kind m = kind) !sent)
  in
  check_int "three pushes" 3 (count "push-id");
  check_int "two pulls" 2 (count "pull");
  Alcotest.check_raises "negative counts"
    (Invalid_argument "Brahms_config.make: negative per-round message count")
    (fun () -> ignore (Brahms_config.make ~pushes_per_round:(-1) ()))

let brahms_sampler_interface () =
  let maker = Brahms.sampler ~config:(Brahms_config.make ~l:8 ()) () in
  let count = ref 0 in
  let s =
    maker ~id:(id 0)
      ~bootstrap:(Array.init 4 (fun i -> id (i + 1)))
      ~rng:(rng ())
      ~send:(fun ~dst:_ _ -> incr count)
  in
  Alcotest.(check string) "protocol" "brahms" s.Basalt_proto.Rps.protocol;
  s.Basalt_proto.Rps.on_round ();
  check_int "sends per round" 2 !count

module Check = Basalt_check.Check
module Gen = Check.Gen
module Print = Check.Print

let prop_view_never_contains_self =
  Check.prop ~name:"brahms view never contains self" ~count:100
    ~print:Print.int (Gen.nat ~max:10_000)
    (fun seed ->
      let _, send = ((), fun ~dst:_ _ -> ()) in
      let t =
        Brahms.create
          ~config:(Brahms_config.make ~l:8 ())
          ~id:(Node_id.of_int 0)
          ~bootstrap:(Array.init 6 (fun i -> Node_id.of_int i))
          ~rng:(Basalt_prng.Rng.create ~seed)
          ~send ()
      in
      Brahms.on_message t ~from:(Node_id.of_int 1) (Message.Push_id (Node_id.of_int 1));
      Brahms.on_message t ~from:(Node_id.of_int 2)
        (Message.Pull_reply [| Node_id.of_int 0; Node_id.of_int 3 |]);
      Brahms.on_round t;
      not
        (Array.exists
           (fun p -> Node_id.to_int p = 0)
           (Brahms.sampler_outputs t)))

(* Min-wise samplers are order-oblivious: two same-seed instances fed
   the same identifier multiset in different orders expose identical
   sampler outputs.  [Push_id] handling draws no randomness, so the
   instances stay stream-aligned. *)
let prop_samplers_permutation_invariant =
  Check.prop ~name:"sampler outputs are feed-order invariant" ~count:150
    ~print:(Print.pair Print.int (Print.list Print.int))
    (Gen.pair (Gen.nat ~max:10_000)
       (Gen.list ~min_len:1 ~max_len:40 (Gen.int_range 1 200)))
    (fun (seed, ids) ->
      let make () =
        Brahms.create
          ~config:(Brahms_config.make ~l:8 ())
          ~id:(Node_id.of_int 0) ~bootstrap:[||]
          ~rng:(Basalt_prng.Rng.create ~seed)
          ~send:(fun ~dst:_ _ -> ())
          ()
      in
      let feed t order =
        List.iter
          (fun i ->
            Brahms.on_message t ~from:(Node_id.of_int i)
              (Message.Push_id (Node_id.of_int i)))
          order
      in
      let a = make () and b = make () in
      feed a ids;
      feed b (List.rev ids);
      Brahms.sampler_outputs a = Brahms.sampler_outputs b)

let () =
  Alcotest.run "brahms"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick config_defaults;
          Alcotest.test_case "validation" `Quick config_validation;
          Alcotest.test_case "refresh" `Quick config_refresh;
        ] );
      ( "brahms",
        [
          Alcotest.test_case "bootstrap" `Quick brahms_bootstrap;
          Alcotest.test_case "round messages" `Quick
            brahms_round_sends_push_id_and_pull;
          Alcotest.test_case "pull answered" `Quick
            brahms_pull_answered_with_view;
          Alcotest.test_case "update needs push AND pull" `Quick
            brahms_view_update_requires_both;
          Alcotest.test_case "push alone keeps view" `Quick
            brahms_push_only_no_update;
          Alcotest.test_case "blocking" `Quick brahms_blocking;
          Alcotest.test_case "samplers min-wise" `Quick brahms_samplers_minwise;
          Alcotest.test_case "multi-id push parsed as one" `Quick
            brahms_multi_id_push_is_single;
          Alcotest.test_case "sample_tick" `Quick brahms_sample_tick;
          Alcotest.test_case "message budget knobs" `Quick
            brahms_message_budget_knobs;
          Alcotest.test_case "sampler interface" `Quick brahms_sampler_interface;
        ] );
      Check.suite "properties"
        [
          prop_view_never_contains_self;
          prop_samplers_permutation_invariant;
        ];
    ]
