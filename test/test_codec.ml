(* Tests for basalt.codec: the binary wire format.

   Example-based cases pin the format; the lib/check properties fuzz the
   decoder (decode must be total: typed Error, never an exception, never
   a read past the buffer) and check the encode/decode round trip over
   the full message space.  corpus/wire_corpus.txt replays previously
   crashing / near-miss inputs on every run. *)

module Check = Basalt_check.Check
module Gen = Check.Gen
module Gens = Check.Gens
module Print = Check.Print
module Wire = Basalt_codec.Wire
module Message = Basalt_proto.Message
module Node_id = Basalt_proto.Node_id
module Rng = Basalt_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let id = Node_id.of_int

let msg_equal a b =
  match (a, b) with
  | Message.Pull_request, Message.Pull_request -> true
  | Message.Pull_reply x, Message.Pull_reply y | Message.Push x, Message.Push y
    ->
      Array.length x = Array.length y
      && Array.for_all2 Node_id.equal x y
  | Message.Push_id x, Message.Push_id y -> Node_id.equal x y
  | ( Message.Gossip { mid = m1; hops = h1; payload = p1 },
      Message.Gossip { mid = m2; hops = h2; payload = p2 } ) ->
      Message.mid_equal m1 m2 && h1 = h2 && Bytes.equal p1 p2
  | Message.Ihave x, Message.Ihave y | Message.Iwant x, Message.Iwant y ->
      Array.length x = Array.length y && Array.for_all2 Message.mid_equal x y
  | Message.Graft, Message.Graft | Message.Prune, Message.Prune -> true
  | _ -> false

let round_trip msg =
  match Wire.decode (Wire.encode msg) with
  | Ok decoded -> check_bool "round trip" true (msg_equal msg decoded)
  | Error e -> Alcotest.failf "decode error: %a" Wire.pp_error e

let codec_round_trips () =
  round_trip Message.Pull_request;
  round_trip (Message.Pull_reply [||]);
  round_trip (Message.Pull_reply [| id 1; id 2; id 3 |]);
  round_trip (Message.Push (Array.init 200 id));
  round_trip (Message.Push_id (id 0));
  round_trip (Message.Push_id (id ((1 lsl 48) - 1)))

let mid origin seqno = { Message.origin = id origin; seqno }

(* One pinned round trip per broadcast frame constructor (the lib/check
   property below covers the full space). *)
let codec_broadcast_round_trips () =
  round_trip (Message.Gossip { mid = mid 7 0; hops = 0; payload = Bytes.empty });
  round_trip
    (Message.Gossip
       { mid = mid ((1 lsl 48) - 1) 0xFFFF_FFFF;
         hops = 0xFFFF;
         payload = Bytes.of_string "rumor" });
  round_trip (Message.Ihave [||]);
  round_trip (Message.Ihave [| mid 1 2; mid 3 0xFFFF_FFFF |]);
  round_trip (Message.Iwant [| mid 42 7 |]);
  round_trip Message.Graft;
  round_trip Message.Prune

let codec_broadcast_sizes () =
  let g = Message.Gossip { mid = mid 1 2; hops = 3; payload = Bytes.create 10 } in
  check_int "gossip size" (6 + 14 + 10) (Bytes.length (Wire.encode g));
  check_int "gossip encoded_size agrees" (Bytes.length (Wire.encode g))
    (Wire.encoded_size g);
  let ih = Message.Ihave [| mid 1 2; mid 3 4 |] in
  check_int "ihave size" (6 + 24) (Bytes.length (Wire.encode ih));
  check_int "graft is header only" 6 (Bytes.length (Wire.encode Message.Graft));
  check_int "prune encoded_size" 6 (Wire.encoded_size Message.Prune)

(* The format cannot carry out-of-range broadcast fields; encode must
   refuse rather than truncate silently. *)
let codec_broadcast_encode_guards () =
  let check name expected msg =
    Alcotest.check_raises name (Invalid_argument expected) (fun () ->
        ignore (Wire.encode msg))
  in
  check "seqno too large" "Wire.encode: sequence number out of u32 range"
    (Message.Gossip
       { mid = mid 1 (Wire.max_seqno + 1); hops = 0; payload = Bytes.empty });
  check "negative seqno in digest"
    "Wire.encode: sequence number out of u32 range"
    (Message.Ihave [| mid 1 (-1) |]);
  check "hops too large" "Wire.encode: hop count out of u16 range"
    (Message.Gossip
       { mid = mid 1 0; hops = Wire.max_hops + 1; payload = Bytes.empty });
  check "payload too large" "Wire.encode: payload too large"
    (Message.Gossip
       { mid = mid 1 0; hops = 0; payload = Bytes.create (Wire.max_payload + 1) })

let codec_size () =
  check_int "pull is header only" 6
    (Bytes.length (Wire.encode Message.Pull_request));
  let m = Message.Push (Array.init 5 id) in
  check_int "push size" (6 + 40) (Bytes.length (Wire.encode m));
  check_int "encoded_size agrees" (Bytes.length (Wire.encode m))
    (Wire.encoded_size m)

let expect_error name buf expected =
  match Wire.decode buf with
  | Ok _ -> Alcotest.failf "%s: expected error" name
  | Error e -> check_bool name true (e = expected)

let codec_rejects_garbage () =
  expect_error "empty" (Bytes.create 0) Wire.Truncated;
  expect_error "short header" (Bytes.create 3) Wire.Truncated;
  let good = Wire.encode (Message.Push [| id 1 |]) in
  let bad_magic = Bytes.copy good in
  Bytes.set_uint8 bad_magic 0 0x00;
  expect_error "bad magic" bad_magic (Wire.Bad_magic 0);
  let bad_version = Bytes.copy good in
  Bytes.set_uint8 bad_version 1 9;
  expect_error "bad version" bad_version (Wire.Bad_version 9);
  let bad_tag = Bytes.copy good in
  Bytes.set_uint8 bad_tag 2 9;
  expect_error "bad tag" bad_tag (Wire.Bad_tag 9);
  let truncated = Bytes.sub good 0 (Bytes.length good - 1) in
  expect_error "truncated payload" truncated Wire.Truncated;
  let trailing = Bytes.cat good (Bytes.make 2 'x') in
  expect_error "trailing" trailing (Wire.Trailing_garbage 2)

let codec_rejects_negative_id () =
  let buf = Wire.encode (Message.Push_id (id 1)) in
  Bytes.set_int64_be buf 6 (-1L);
  expect_error "negative id" buf Wire.Id_out_of_range

let codec_decode_sub () =
  let msg = Message.Push [| id 42 |] in
  let encoded = Wire.encode msg in
  let padded = Bytes.cat (Bytes.make 3 'p') encoded in
  (match Wire.decode_sub padded ~off:3 ~len:(Bytes.length encoded) with
  | Ok decoded -> check_bool "offset decode" true (msg_equal msg decoded)
  | Error e -> Alcotest.failf "decode error: %a" Wire.pp_error e);
  Alcotest.check_raises "bad slice"
    (Invalid_argument "Wire.decode_sub: slice out of bounds") (fun () ->
      ignore (Wire.decode_sub padded ~off:3 ~len:(Bytes.length padded)))

(* Regression: [off + len] used to be computed with a plain addition, so
   hostile values near max_int wrapped negative, slipped past the slice
   guard, and crashed inside the Bytes primitives instead of raising the
   documented Invalid_argument. *)
let codec_decode_sub_overflow () =
  let buf = Bytes.create 16 in
  let cases =
    [ (max_int, 16); (max_int - 7, 32); (8, max_int); (max_int, max_int) ]
  in
  List.iter
    (fun (off, len) ->
      Alcotest.check_raises
        (Printf.sprintf "off=%d len=%d" off len)
        (Invalid_argument "Wire.decode_sub: slice out of bounds")
        (fun () -> ignore (Wire.decode_sub buf ~off ~len)))
    cases

let codec_too_many_ids () =
  Alcotest.check_raises "too many"
    (Invalid_argument "Wire.encode: too many identifiers") (fun () ->
      ignore (Wire.encode (Message.Push (Array.make (Wire.max_ids + 1) (id 0)))))

(* --- corpus replay -------------------------------------------------- *)

let parse_hex name s =
  if s = "-" then Bytes.create 0
  else begin
    if String.length s mod 2 <> 0 then
      Alcotest.failf "corpus %s: odd hex length" name;
    Bytes.init
      (String.length s / 2)
      (fun i ->
        match int_of_string_opt ("0x" ^ String.sub s (2 * i) 2) with
        | Some v -> Char.chr v
        | None -> Alcotest.failf "corpus %s: bad hex" name)
  end

let load_corpus path =
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | line -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then read acc
        else
          match String.index_opt line ' ' with
          | None -> Alcotest.failf "corpus: malformed line %S" line
          | Some i ->
              let name = String.sub line 0 i in
              let hex =
                String.trim (String.sub line i (String.length line - i))
              in
              read ((name, parse_hex name hex) :: acc))
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  read []

let codec_corpus () =
  let entries = load_corpus "corpus/wire_corpus.txt" in
  check_bool "corpus is non-empty" true (List.length entries >= 20);
  List.iter
    (fun (name, buf) ->
      match Wire.decode buf with
      | Ok m ->
          Alcotest.failf "corpus %s: decoded Ok (%a), expected Error" name
            Message.pp m
      | Error _ -> ()
      | exception e ->
          Alcotest.failf "corpus %s: raised %s" name (Printexc.to_string e))
    entries

(* --- lib/check properties ------------------------------------------ *)

let print_message m = Format.asprintf "%a" Message.pp m

(* Round trip over the full message space, including 48-bit identifiers
   (the width the UDP transport packs an address+port into). *)
let prop_round_trip =
  Check.prop ~name:"encode/decode round trip" ~print:print_message
    (Gens.message ())
    (fun msg ->
      match Wire.decode (Wire.encode msg) with
      | Ok decoded -> msg_equal msg decoded
      | Error _ -> false)

let prop_encoded_size =
  Check.prop ~name:"encoded_size = length of encode" ~print:print_message
    (Gens.message ())
    (fun msg -> Wire.encoded_size msg = Bytes.length (Wire.encode msg))

(* Totality on arbitrary byte soup: Ok or Error, never an exception. *)
let prop_decode_total =
  Check.prop ~name:"decode never raises" ~count:2000
    ~print:Print.bytes_hex
    (Gen.bytes ~max_len:64 ())
    (fun buf -> match Wire.decode buf with Ok _ | Error _ -> true)

(* Flipping any single byte of a valid datagram must either fail to
   decode or decode to a (possibly different) message — never raise. *)
let prop_bitflip_safe =
  Check.prop ~name:"bit flips never raise"
    ~print:(Print.triple print_message Print.int Print.int)
    (Gen.triple
       (Gens.message ~max_ids:20 ())
       (Gen.nat ~max:10_000) (Gen.nat ~max:255))
    (fun (msg, pos, value) ->
      let buf = Wire.encode msg in
      let pos = pos mod Bytes.length buf in
      Bytes.set_uint8 buf pos value;
      match Wire.decode buf with Ok _ | Error _ -> true)

(* Malformed-by-construction buffers: each mutation strategy guarantees
   the result is invalid, so decode must return a typed Error (and in
   particular must not raise).  10k cases per seed — the adversarial
   hardening bar of DESIGN.md §9. *)
let malformed_gen =
  let base = Gens.message ~max_ids:20 () in
  let mutate =
    Gen.oneof
      [
        (* truncate at least one byte (all messages are >= 6 bytes) *)
        Gen.map2
          (fun msg cut ->
            let b = Wire.encode msg in
            Bytes.sub b 0 (cut mod Bytes.length b))
          base (Gen.nat ~max:10_000);
        (* append trailing garbage *)
        Gen.map2
          (fun msg extra ->
            let b = Wire.encode msg in
            Bytes.cat b (Bytes.make (1 + extra) '\xee'))
          base (Gen.nat ~max:16);
        (* corrupt the magic byte *)
        Gen.map2
          (fun msg m ->
            let b = Wire.encode msg in
            Bytes.set_uint8 b 0 (if m = 0xB5 then 0 else m);
            b)
          base (Gen.nat ~max:255);
        (* unsupported version *)
        Gen.map2
          (fun msg v ->
            let b = Wire.encode msg in
            Bytes.set_uint8 b 1 (if v = 1 then 0 else v);
            b)
          base (Gen.nat ~max:255);
        (* unknown tag (9..255 — tags 4-8 are the broadcast frames) *)
        Gen.map2
          (fun msg t ->
            let b = Wire.encode msg in
            Bytes.set_uint8 b 2 (9 + (t mod 247));
            b)
          base (Gen.nat ~max:10_000);
        (* out-of-range identifier: set the sign bit of an id word *)
        Gen.map
          (fun ids ->
            let msg = Message.Push (Array.of_list ids) in
            let b = Wire.encode msg in
            Bytes.set_int64_be b 6
              (Int64.logor 0x8000000000000000L (Bytes.get_int64_be b 6));
            b)
          (Gen.list ~min_len:1 ~max_len:20
             (Gen.map Node_id.of_int (Gen.nat ~max:1000)));
        (* declared count larger than the payload *)
        Gen.map2
          (fun msg bump ->
            let b = Wire.encode msg in
            let count = Bytes.get_uint16_be b 4 in
            Bytes.set_uint16_be b 4 (min 0xFFFF (count + 1 + bump));
            b)
          base (Gen.nat ~max:1000);
      ]
  in
  mutate

let prop_malformed_rejected =
  Check.prop ~name:"malformed buffers are rejected" ~count:10_000
    ~print:Print.bytes_hex malformed_gen
    (fun buf ->
      match Wire.decode buf with
      | Error _ -> true
      | Ok _ -> false
      | exception _ -> false)

(* Any strict prefix of a valid datagram is Truncated (the declared
   count pins the exact length, so no prefix can re-parse as valid). *)
let prop_prefix_truncated =
  Check.prop ~name:"strict prefixes decode to Truncated"
    ~print:(Print.pair print_message Print.int)
    (Gen.pair (Gens.message ~max_ids:20 ()) (Gen.nat ~max:10_000))
    (fun (msg, cut) ->
      let b = Wire.encode msg in
      let prefix = Bytes.sub b 0 (cut mod Bytes.length b) in
      match Wire.decode prefix with
      | Error Wire.Truncated -> true
      | Error _ | Ok _ -> false)

let () =
  Alcotest.run "codec"
    [
      ( "wire",
        [
          Alcotest.test_case "round trips" `Quick codec_round_trips;
          Alcotest.test_case "sizes" `Quick codec_size;
          Alcotest.test_case "rejects garbage" `Quick codec_rejects_garbage;
          Alcotest.test_case "rejects negative id" `Quick
            codec_rejects_negative_id;
          Alcotest.test_case "decode_sub" `Quick codec_decode_sub;
          Alcotest.test_case "decode_sub overflow" `Quick
            codec_decode_sub_overflow;
          Alcotest.test_case "too many ids" `Quick codec_too_many_ids;
          Alcotest.test_case "broadcast round trips" `Quick
            codec_broadcast_round_trips;
          Alcotest.test_case "broadcast sizes" `Quick codec_broadcast_sizes;
          Alcotest.test_case "broadcast encode guards" `Quick
            codec_broadcast_encode_guards;
          Alcotest.test_case "corpus replay" `Quick codec_corpus;
        ] );
      Check.suite "properties"
        [
          prop_round_trip;
          prop_encoded_size;
          prop_decode_total;
          prop_bitflip_safe;
          prop_malformed_rejected;
          prop_prefix_truncated;
        ];
    ]
