(* Tests for the deterministic domain pool (lib/parallel).

   The pool's contract is behavioural equivalence with List.map — same
   results, same order, same leftmost exception — plus determinism of
   map_rng streams regardless of the domain count.  Everything here
   checks observable equivalence; scheduling itself is unobservable by
   design. *)

module Pool = Basalt_parallel.Pool
module Rng = Basalt_prng.Rng

let check = Alcotest.check
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let int_list = Alcotest.(list int)

let with_pool4 f = Pool.with_pool ~domains:4 f

(* --- map = List.map --- *)

let map_matches_list_map () =
  with_pool4 (fun pool ->
      let xs = List.init 100 Fun.id in
      let f x = (x * x) + 1 in
      check int_list "same results in order" (List.map f xs)
        (Pool.map ~pool f xs);
      check int_list "empty list" [] (Pool.map ~pool f []);
      check int_list "singleton" [ 10 ] (Pool.map ~pool f [ 3 ]))

let map_without_pool_is_sequential () =
  let xs = [ 5; 6; 7 ] in
  check int_list "no pool" (List.map succ xs) (Pool.map succ xs)

let mapi_matches_list_mapi () =
  with_pool4 (fun pool ->
      let xs = [ 10; 20; 30; 40 ] in
      let f i x = (i * 1000) + x in
      check int_list "indices line up" (List.mapi f xs)
        (Pool.mapi ~pool f xs))

let map_on_one_domain_pool () =
  Pool.with_pool ~domains:1 (fun pool ->
      check_int "degree 1" 1 (Pool.domain_count pool);
      check int_list "still List.map" [ 2; 3 ]
        (Pool.map ~pool succ [ 1; 2 ]))

let map_reuses_pool () =
  with_pool4 (fun pool ->
      check_int "degree 4" 4 (Pool.domain_count pool);
      for i = 1 to 5 do
        let xs = List.init (10 * i) Fun.id in
        check int_list
          (Printf.sprintf "batch %d" i)
          (List.map succ xs)
          (Pool.map ~pool succ xs)
      done)

(* --- exception propagation --- *)

exception Boom of int

let map_propagates_exception () =
  with_pool4 (fun pool ->
      match
        Pool.map ~pool (fun x -> if x = 7 then raise (Boom x) else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 7 -> ())

let map_raises_leftmost_failure () =
  with_pool4 (fun pool ->
      (* Several tasks fail; List.map would have hit index 3 first. *)
      match
        Pool.map ~pool
          (fun x -> if x >= 3 then raise (Boom x) else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> check_int "leftmost" 3 i)

let pool_survives_failed_map () =
  with_pool4 (fun pool ->
      (match Pool.map ~pool (fun _ -> raise (Boom 0)) [ 1; 2; 3 ] with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom _ -> ());
      check int_list "next map is clean" [ 2; 3; 4 ]
        (Pool.map ~pool succ [ 1; 2; 3 ]))

(* --- nested maps fall back to sequential --- *)

let nested_map_does_not_deadlock () =
  with_pool4 (fun pool ->
      let result =
        Pool.map ~pool
          (fun x ->
            (* A nested map on the same pool, from inside a task. *)
            List.fold_left ( + ) 0 (Pool.map ~pool (fun y -> x * y) [ 1; 2; 3 ]))
          [ 1; 2; 3; 4 ]
      in
      check int_list "nested results" [ 6; 12; 18; 24 ] result)

(* --- shutdown --- *)

let shutdown_is_idempotent () =
  let pool = Pool.create ~domains:3 () in
  check int_list "usable before shutdown" [ 1 ] (Pool.map ~pool Fun.id [ 1 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* Every map on a shut-down pool raises, including the sequential
     fast paths (empty/singleton lists). *)
  (match Pool.map ~pool Fun.id [ 1 ] with
  | _ -> Alcotest.fail "map after shutdown should raise"
  | exception Invalid_argument _ -> ());
  match Pool.map ~pool Fun.id [ 1; 2 ] with
  | _ -> Alcotest.fail "two-element map after shutdown should raise"
  | exception Invalid_argument _ -> ()

let create_rejects_bad_domains () =
  match Pool.create ~domains:0 () with
  | _ -> Alcotest.fail "domains=0 should be rejected"
  | exception Invalid_argument _ -> ()

let with_pool_shuts_down_on_raise () =
  let leaked = ref None in
  (match
     Pool.with_pool ~domains:2 (fun pool ->
         leaked := Some pool;
         raise (Boom 1))
   with
  | () -> Alcotest.fail "expected Boom"
  | exception Boom 1 -> ());
  match !leaked with
  | None -> Alcotest.fail "pool not observed"
  | Some pool -> (
      match Pool.map ~pool Fun.id [ 1; 2 ] with
      | _ -> Alcotest.fail "pool should be shut down"
      | exception Invalid_argument _ -> ())

(* --- map_rng determinism --- *)

let map_rng_deterministic_across_domains () =
  let draw rng x = (x, Rng.int rng 1_000_000, Rng.float rng 1.0) in
  let xs = List.init 32 Fun.id in
  let sequential = Pool.map_rng ~rng:(Rng.create ~seed:42) draw xs in
  let parallel =
    with_pool4 (fun pool ->
        Pool.map_rng ~pool ~rng:(Rng.create ~seed:42) draw xs)
  in
  List.iter2
    (fun (x, i, f) (x', i', f') ->
      check_int "element" x x';
      check_int "int draw" i i';
      Alcotest.(check int64)
        "float draw bits" (Int64.bits_of_float f) (Int64.bits_of_float f'))
    sequential parallel

let map_rng_streams_are_independent () =
  let draw rng _ = Rng.int rng 1_000_000 in
  let xs = List.init 16 Fun.id in
  let draws =
    with_pool4 (fun pool ->
        Pool.map_rng ~pool ~rng:(Rng.create ~seed:7) draw xs)
  in
  let distinct = List.sort_uniq Int.compare draws in
  check_bool "streams differ (no shared generator)" true
    (List.length distinct > 1)

(* --- recommended_domains --- *)

let recommended_domains_positive () =
  check_bool "at least one" true (Pool.recommended_domains () >= 1)

(* --- properties: List.map equivalence over randomized batches ---

   Each case spawns its own short-lived pools, so the budgets stay small
   (a pool spawn is ~1 ms; these remain the cheap end of the suite). *)

module Check = Basalt_check.Check
module Gen = Check.Gen
module Print = Check.Print

(* Batch sizes hug the interesting edges: empty, below the domain
   count, and comfortably above it. *)
let batch_gen = Gen.list ~max_len:12 (Gen.int_range (-1000) 1000)

let prop_map_domain_count_invariant =
  Check.prop ~name:"map agrees at j=1 and j=4 (incl. tiny batches)"
    ~count:30 ~print:(Print.list Print.int) batch_gen
    (fun xs ->
      let f x = (x * 31) + 7 in
      let expected = List.map f xs in
      let j1 = Pool.with_pool ~domains:1 (fun pool -> Pool.map ~pool f xs) in
      let j4 = Pool.with_pool ~domains:4 (fun pool -> Pool.map ~pool f xs) in
      expected = j1 && expected = j4)

let prop_map_rng_domain_count_invariant =
  Check.prop ~name:"map_rng is bit-identical at j=1 and j=4" ~count:30
    ~print:(Print.pair Print.int (Print.list Print.int))
    (Gen.pair (Gen.nat ~max:10_000) batch_gen)
    (fun (seed, xs) ->
      let draw rng x = (x, Rng.int rng 1_000_000) in
      let sequential = Pool.map_rng ~rng:(Rng.create ~seed) draw xs in
      let parallel =
        Pool.with_pool ~domains:4 (fun pool ->
            Pool.map_rng ~pool ~rng:(Rng.create ~seed) draw xs)
      in
      sequential = parallel)

(* Nested map_rng: an outer parallel fan-out whose tasks themselves call
   map_rng (sequential fallback) must equal the fully sequential run. *)
let prop_nested_map_rng_deterministic =
  Check.prop ~name:"nested map_rng matches sequential" ~count:20
    ~print:(Print.pair Print.int (Print.list Print.int))
    (Gen.pair (Gen.nat ~max:10_000)
       (Gen.list ~max_len:6 (Gen.nat ~max:50)))
    (fun (seed, xs) ->
      let inner rng x = List.init 3 (fun i -> Rng.int rng (x + i + 1)) in
      let outer pool rng x =
        Pool.map_rng ?pool ~rng (fun rng y -> inner rng y) [ x; x + 1 ]
      in
      let sequential =
        Pool.map_rng ~rng:(Rng.create ~seed) (outer None) xs
      in
      let parallel =
        Pool.with_pool ~domains:4 (fun pool ->
            Pool.map_rng ~pool ~rng:(Rng.create ~seed)
              (outer (Some pool)) xs)
      in
      sequential = parallel)

(* The leftmost failing element's exception wins, regardless of where
   later failures sit in the batch. *)
let prop_leftmost_exception =
  Check.prop ~name:"leftmost exception wins" ~count:30
    ~print:(Print.list Print.bool)
    (Gen.such_that
       (List.exists Fun.id)
       (Gen.list ~min_len:1 ~max_len:12 Gen.bool))
    (fun flags ->
      let tagged = List.mapi (fun i fail -> (i, fail)) flags in
      let expected_idx =
        fst (List.find (fun (_, fail) -> fail) tagged)
      in
      match
        Pool.with_pool ~domains:4 (fun pool ->
            Pool.map ~pool
              (fun (i, fail) -> if fail then raise (Boom i) else i)
              tagged)
      with
      | _ -> false
      | exception Boom i -> i = expected_idx)

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "matches List.map" `Quick map_matches_list_map;
          Alcotest.test_case "no pool is sequential" `Quick
            map_without_pool_is_sequential;
          Alcotest.test_case "mapi matches List.mapi" `Quick
            mapi_matches_list_mapi;
          Alcotest.test_case "one-domain pool" `Quick map_on_one_domain_pool;
          Alcotest.test_case "pool reuse" `Quick map_reuses_pool;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "propagates" `Quick map_propagates_exception;
          Alcotest.test_case "leftmost failure wins" `Quick
            map_raises_leftmost_failure;
          Alcotest.test_case "pool survives failure" `Quick
            pool_survives_failed_map;
        ] );
      ( "nesting",
        [
          Alcotest.test_case "nested map falls back" `Quick
            nested_map_does_not_deadlock;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "shutdown idempotent" `Quick
            shutdown_is_idempotent;
          Alcotest.test_case "create validates domains" `Quick
            create_rejects_bad_domains;
          Alcotest.test_case "with_pool cleans up on raise" `Quick
            with_pool_shuts_down_on_raise;
          Alcotest.test_case "recommended_domains" `Quick
            recommended_domains_positive;
        ] );
      ( "map_rng",
        [
          Alcotest.test_case "deterministic across domains" `Quick
            map_rng_deterministic_across_domains;
          Alcotest.test_case "independent streams" `Quick
            map_rng_streams_are_independent;
        ] );
      Check.suite "properties"
        [
          prop_map_domain_count_invariant;
          prop_map_rng_domain_count_invariant;
          prop_nested_map_rng_deterministic;
          prop_leftmost_exception;
        ];
    ]
