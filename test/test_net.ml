(* Tests for basalt.net: endpoints, the real-time event loop, and an
   end-to-end UDP overlay on the loopback interface. *)

module Endpoint = Basalt_net.Endpoint
module Event_loop = Basalt_net.Event_loop
module Udp_node = Basalt_net.Udp_node

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Endpoint --- *)

let endpoint_parse () =
  (match Endpoint.of_string "127.0.0.1:4001" with
  | Ok e ->
      Alcotest.(check string) "round trip" "127.0.0.1:4001"
        (Endpoint.to_string e)
  | Error msg -> Alcotest.fail msg);
  check_bool "missing port" true
    (Result.is_error (Endpoint.of_string "127.0.0.1"));
  check_bool "bad port" true
    (Result.is_error (Endpoint.of_string "127.0.0.1:zzz"));
  check_bool "port range" true
    (Result.is_error (Endpoint.of_string "127.0.0.1:70000"))

let endpoint_node_id_round_trip () =
  List.iter
    (fun s ->
      match Endpoint.of_string s with
      | Ok e ->
          let e' = Endpoint.of_node_id (Endpoint.to_node_id e) in
          check_bool ("round trip " ^ s) true (Endpoint.equal e e')
      | Error msg -> Alcotest.fail msg)
    [ "127.0.0.1:4001"; "10.255.0.42:65535"; "192.168.1.1:1"; "0.0.0.0:0" ]

let endpoint_ids_distinct () =
  let nid s =
    match Endpoint.of_string s with
    | Ok e -> Basalt_proto.Node_id.to_int (Endpoint.to_node_id e)
    | Error m -> Alcotest.fail m
  in
  check_bool "ports distinguish" true
    (nid "127.0.0.1:4001" <> nid "127.0.0.1:4002");
  check_bool "hosts distinguish" true
    (nid "127.0.0.1:4001" <> nid "127.0.0.2:4001")

let endpoint_sockaddr () =
  let e = Endpoint.make "127.0.0.1" 9999 in
  match Endpoint.of_sockaddr (Endpoint.to_sockaddr e) with
  | Ok e' -> check_bool "sockaddr round trip" true (Endpoint.equal e e')
  | Error m -> Alcotest.fail m

(* --- Event_loop --- *)

let loop_timers_fire () =
  let loop = Event_loop.create ~clock:Unix.gettimeofday () in
  let fired = ref [] in
  Event_loop.schedule loop ~delay:0.02 (fun () -> fired := "b" :: !fired);
  Event_loop.schedule loop ~delay:0.005 (fun () -> fired := "a" :: !fired);
  Event_loop.run_for loop 0.08;
  Alcotest.(check (list string)) "order" [ "b"; "a" ] !fired

let loop_every_fires_repeatedly () =
  let loop = Event_loop.create ~clock:Unix.gettimeofday () in
  let count = ref 0 in
  Event_loop.every loop ~interval:0.01 (fun () -> incr count);
  Event_loop.run_for loop 0.12;
  check_bool (Printf.sprintf "fired repeatedly (%d)" !count) true (!count >= 5)

let loop_stop () =
  let loop = Event_loop.create ~clock:Unix.gettimeofday () in
  let count = ref 0 in
  Event_loop.every loop ~interval:0.005 (fun () ->
      incr count;
      if !count = 3 then Event_loop.stop loop);
  let t0 = Unix.gettimeofday () in
  Event_loop.run_for loop 5.0;
  check_bool "stopped early" true (Unix.gettimeofday () -. t0 < 1.0);
  check_int "stopped at 3" 3 !count

let loop_fd_callback () =
  let loop = Event_loop.create ~clock:Unix.gettimeofday () in
  let r, w = Unix.pipe () in
  Unix.set_nonblock r;
  let got = Buffer.create 8 in
  Event_loop.on_readable loop r (fun () ->
      let buf = Bytes.create 16 in
      match Unix.read r buf 0 16 with
      | len -> Buffer.add_subbytes got buf 0 len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
  Event_loop.schedule loop ~delay:0.01 (fun () ->
      ignore (Unix.write_substring w "ping" 0 4));
  Event_loop.run_for loop 0.08;
  Event_loop.remove_fd loop r;
  Unix.close r;
  Unix.close w;
  Alcotest.(check string) "data received via loop" "ping" (Buffer.contents got)

(* The loop's clock is injected, so timers can be driven deterministically
   by a virtual clock: advance time by hand, then run the due timers. *)
let loop_virtual_clock () =
  let vtime = ref 0.0 in
  let loop = Event_loop.create ~clock:(fun () -> !vtime) () in
  let fired = ref [] in
  Event_loop.schedule loop ~delay:1.0 (fun () -> fired := "once" :: !fired);
  Event_loop.every loop ~interval:2.0 (fun () -> fired := "tick" :: !fired);
  Event_loop.run_due_timers loop;
  Alcotest.(check (list string)) "nothing due at t=0" [] !fired;
  vtime := 1.0;
  Event_loop.run_due_timers loop;
  Alcotest.(check (list string)) "one-shot at t=1" [ "once" ] !fired;
  vtime := 2.0;
  Event_loop.run_due_timers loop;
  Alcotest.(check (list string))
    "periodic at t=2" [ "tick"; "once" ] !fired;
  vtime := 6.0;
  Event_loop.run_due_timers loop;
  Alcotest.(check (list string))
    "periodic catches up one tick per run" [ "tick"; "tick"; "once" ] !fired

(* --- Frame codec --- *)

module Frame = Basalt_net.Frame
module Message = Basalt_proto.Message
module Node_id = Basalt_proto.Node_id

let frame_round_trip () =
  let sender = Node_id.of_int 12345 in
  let msg = Message.Push (Array.init 5 Node_id.of_int) in
  let frame = Frame.encode ~sender msg in
  let d = Frame.Decoder.create () in
  match Frame.Decoder.feed d frame ~off:0 ~len:(Bytes.length frame) with
  | [ Frame.Decoder.Frame (s, Message.Push ids) ] ->
      check_int "sender" 12345 (Node_id.to_int s);
      check_int "payload" 5 (Array.length ids);
      check_int "buffer drained" 0 (Frame.Decoder.buffered d)
  | _ -> Alcotest.fail "expected one push frame"

let frame_byte_by_byte () =
  let sender = Node_id.of_int 7 in
  let msgs =
    [ Message.Pull_request; Message.Push_id (Node_id.of_int 9);
      Message.Pull_reply (Array.init 3 Node_id.of_int) ]
  in
  let stream =
    Bytes.concat Bytes.empty (List.map (Frame.encode ~sender) msgs)
  in
  let d = Frame.Decoder.create () in
  let received = ref [] in
  Bytes.iter
    (fun c ->
      let one = Bytes.make 1 c in
      List.iter
        (function
          | Frame.Decoder.Frame (_, m) -> received := m :: !received
          | Frame.Decoder.Corrupt e -> Alcotest.fail e)
        (Frame.Decoder.feed d one ~off:0 ~len:1))
    stream;
  check_int "all frames recovered" 3 (List.length !received);
  Alcotest.(check (list string))
    "kinds in order"
    (List.map Message.kind msgs)
    (List.map Message.kind (List.rev !received))

let frame_rejects_oversize () =
  let d = Frame.Decoder.create () in
  let evil = Bytes.create 4 in
  Bytes.set_int32_be evil 0 (Int32.of_int (Frame.max_frame + 1));
  (match Frame.Decoder.feed d evil ~off:0 ~len:4 with
  | [ Frame.Decoder.Corrupt _ ] -> ()
  | _ -> Alcotest.fail "expected corrupt");
  (* decoder stays poisoned *)
  match Frame.Decoder.feed d (Bytes.create 1) ~off:0 ~len:1 with
  | [ Frame.Decoder.Corrupt _ ] -> ()
  | _ -> Alcotest.fail "decoder should stay corrupt"

let frame_rejects_bad_payload () =
  let good = Frame.encode ~sender:(Node_id.of_int 1) Message.Pull_request in
  Bytes.set_uint8 good 12 0x00 (* clobber the wire magic *);
  let d = Frame.Decoder.create () in
  match Frame.Decoder.feed d good ~off:0 ~len:(Bytes.length good) with
  | [ Frame.Decoder.Corrupt _ ] -> ()
  | _ -> Alcotest.fail "expected corrupt payload"

(* --- End-to-end TCP overlay --- *)

module Tcp_node = Basalt_net.Tcp_node

let tcp_overlay_converges () =
  let loop = Event_loop.create ~clock:Unix.gettimeofday () in
  let n = 6 in
  let config =
    Basalt_core.Config.make ~v:8 ~k:2 ~tau:0.04 ~rho:(2.0 /. 0.04) ()
  in
  let probes =
    Array.init n (fun i ->
        Tcp_node.create ~config ~loop
          ~listen:(Endpoint.make "127.0.0.1" 0)
          ~bootstrap:[] ~seed:(3000 + i) ())
  in
  let endpoints = Array.map Tcp_node.endpoint probes in
  Array.iter Tcp_node.close probes;
  let nodes =
    Array.init n (fun i ->
        Tcp_node.create ~config ~loop ~listen:endpoints.(i)
          ~bootstrap:[ endpoints.((i + 1) mod n) ]
          ~seed:(4000 + i) ())
  in
  Event_loop.run_for loop 1.2;
  Array.iteri
    (fun i node ->
      let stats = Tcp_node.stats node in
      check_bool
        (Printf.sprintf "node %d exchanged frames (%d in / %d out)" i
           stats.Tcp_node.frames_in stats.Tcp_node.frames_out)
        true
        (stats.Tcp_node.frames_in > 0 && stats.Tcp_node.frames_out > 0);
      let distinct =
        List.sort_uniq compare (List.map Endpoint.to_string (Tcp_node.view node))
      in
      check_bool
        (Printf.sprintf "node %d discovered peers beyond bootstrap (%d)" i
           (List.length distinct))
        true
        (List.length distinct > 1))
    nodes;
  Array.iter Tcp_node.close nodes

(* --- End-to-end UDP overlay --- *)

let localhost port = Endpoint.make "127.0.0.1" port

(* A hostile datagram must be counted and ignored, not crash the node. *)
let udp_garbage_counted () =
  let loop = Event_loop.create ~clock:Unix.gettimeofday () in
  let node =
    Udp_node.create
      ~config:(Basalt_core.Config.make ~v:4 ~k:1 ~tau:0.05 ())
      ~loop ~listen:(localhost 0) ~bootstrap:[] ~seed:1 ()
  in
  let target = Endpoint.to_sockaddr (Udp_node.endpoint node) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  let garbage = Bytes.of_string "definitely not a basalt datagram" in
  ignore (Unix.sendto sock garbage 0 (Bytes.length garbage) [] target);
  (* A truncated-but-magic-correct datagram too. *)
  let half = Bytes.sub (Basalt_codec.Wire.encode (Message.Push [| Node_id.of_int 1 |])) 0 7 in
  ignore (Unix.sendto sock half 0 (Bytes.length half) [] target);
  Event_loop.run_for loop 0.2;
  Unix.close sock;
  let stats = Udp_node.stats node in
  check_int "both datagrams arrived" 2 stats.Udp_node.datagrams_in;
  check_int "both rejected by the codec" 2 stats.Udp_node.decode_errors;
  check_int "view untouched" 0 (List.length (Udp_node.view node));
  Udp_node.close node

(* --- Pull retry & self-injection --- *)

(* An endpoint that once existed but has nothing listening behind it. *)
let dead_endpoint () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let ep =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, port) -> localhost port
    | _ -> assert false
  in
  Unix.close sock;
  ep

(* The retry policy runs on event-loop timers, so under a virtual clock
   the whole retransmission schedule is deterministic in virtual time:
   attempt i fires after min(max_timeout, timeout * backoff^i). *)
let udp_retry_backoff_capped () =
  let vtime = ref 0.0 in
  let loop = Event_loop.create ~clock:(fun () -> !vtime) () in
  let retry =
    {
      Udp_node.timeout = 1.0;
      backoff = 2.0;
      max_timeout = 8.0;
      max_attempts = 3;
      jitter = 0.0;
    }
  in
  let node =
    Udp_node.create
      ~config:
        (Basalt_core.Config.make ~v:4 ~k:1 ~tau:1000.0 ~evict_after_rounds:50
           ())
      ~retry ~loop ~listen:(localhost 0)
      ~bootstrap:[ dead_endpoint () ]
      ~seed:5 ()
  in
  let advance t =
    vtime := t;
    Event_loop.run_due_timers loop
  in
  let retries () = (Udp_node.stats node).Udp_node.retries in
  advance 0.5 (* round 1 fires near t=0: one pull + one push *);
  let out0 = (Udp_node.stats node).Udp_node.datagrams_out in
  check_int "round sent pull and push" 2 out0;
  check_int "no retries before the timeout" 0 (retries ());
  advance 2.0 (* attempt 0: timeout * backoff^0 = 1s after the pull *);
  check_int "first retransmission" 1 (retries ());
  advance 5.0 (* attempt 1: +2s *);
  check_int "second retransmission" 2 (retries ());
  advance 10.0 (* attempt 2: +4s *);
  check_int "third retransmission" 3 (retries ());
  advance 500.0 (* budget spent: the pending pull is abandoned *);
  check_int "capped at max_attempts" 3 (retries ());
  check_int "every retry hit the wire" (out0 + 3)
    (Udp_node.stats node).Udp_node.datagrams_out;
  Udp_node.close node

let udp_retry_cleared_by_reply () =
  let loop = Event_loop.create ~clock:Unix.gettimeofday () in
  let config =
    Basalt_core.Config.make ~v:8 ~k:2 ~tau:0.04 ~rho:(2.0 /. 0.04) ()
  in
  (* Timeouts far beyond the test duration: any retry we observe would
     have to be a pull whose reply failed to clear the pending entry. *)
  let retry =
    { Udp_node.default_retry with timeout = 10.0; max_timeout = 10.0 }
  in
  let a =
    Udp_node.create ~config ~retry ~loop ~listen:(localhost 0) ~bootstrap:[]
      ~seed:11 ()
  in
  let b =
    Udp_node.create ~config ~retry ~loop ~listen:(localhost 0)
      ~bootstrap:[ Udp_node.endpoint a ]
      ~seed:12 ()
  in
  Event_loop.run_for loop 0.5;
  List.iter
    (fun (name, node) ->
      let stats = Udp_node.stats node in
      check_bool (name ^ " exchanged datagrams") true
        (stats.Udp_node.datagrams_in > 0 && stats.Udp_node.datagrams_out > 0);
      check_int (name ^ " never retried") 0 stats.Udp_node.retries)
    [ ("a", a); ("b", b) ];
  Udp_node.close a;
  Udp_node.close b

let udp_inject_loss_drops () =
  let vtime = ref 0.0 in
  let loop = Event_loop.create ~clock:(fun () -> !vtime) () in
  let config = Basalt_core.Config.make ~v:4 ~k:1 ~tau:1.0 () in
  let mk ~inject_loss seed =
    Udp_node.create ~config ~retry:Udp_node.no_retry ~inject_loss ~loop
      ~listen:(localhost 0)
      ~bootstrap:[ dead_endpoint () ]
      ~seed ()
  in
  let silent = mk ~inject_loss:1.0 3 in
  let noisy = mk ~inject_loss:0.0 3 in
  List.iter
    (fun t ->
      vtime := t;
      Event_loop.run_due_timers loop)
    [ 1.1; 2.1; 3.1 ];
  check_int "loss=1 puts nothing on the wire" 0
    (Udp_node.stats silent).Udp_node.datagrams_out;
  check_bool "loss=0 control transmits" true
    ((Udp_node.stats noisy).Udp_node.datagrams_out > 0);
  Udp_node.close silent;
  Udp_node.close noisy

let udp_inject_delay_postpones () =
  let vtime = ref 0.0 in
  let loop = Event_loop.create ~clock:(fun () -> !vtime) () in
  let config = Basalt_core.Config.make ~v:4 ~k:1 ~tau:1000.0 () in
  let node =
    Udp_node.create ~config ~retry:Udp_node.no_retry ~inject_delay:5.0 ~loop
      ~listen:(localhost 0)
      ~bootstrap:[ dead_endpoint () ]
      ~seed:7 ()
  in
  vtime := 0.5;
  Event_loop.run_due_timers loop (* round fired; both sends are in flight *);
  check_int "nothing on the wire yet" 0
    (Udp_node.stats node).Udp_node.datagrams_out;
  vtime := 6.0;
  Event_loop.run_due_timers loop (* every deferred transmission is due *);
  check_int "transmitted after the injected delay" 2
    (Udp_node.stats node).Udp_node.datagrams_out;
  Udp_node.close node

(* Spin up [n] real UDP nodes in one process, bootstrap them in a ring of
   overlapping neighbor lists, run the protocol for a little while of
   wall-clock time, and check that views converge to a rich set of
   overlay-wide peers. *)
let udp_overlay_converges () =
  let loop = Event_loop.create ~clock:Unix.gettimeofday () in
  let n = 8 in
  (* Bind with port 0 first so the OS assigns free ports. *)
  let config =
    Basalt_core.Config.make ~v:8 ~k:2 ~tau:0.03 ~rho:(2.0 /. 0.03) ()
  in
  (* rho above gives refresh interval k/rho ~ 0.03s: fast sampling for a
     fast test. *)
  let nodes =
    Array.init n (fun i ->
        Udp_node.create ~config ~loop ~listen:(localhost 0) ~bootstrap:[]
          ~seed:(1000 + i) ())
  in
  (* Every node learns two neighbors' real endpoints as bootstrap via a
     direct state injection: simplest is to create fresh nodes knowing
     the already-bound endpoints. *)
  let endpoints = Array.to_list (Array.map Udp_node.endpoint nodes) in
  Array.iter Udp_node.close nodes;
  let nodes =
    Array.init n (fun i ->
        let bootstrap =
          [
            List.nth endpoints ((i + 1) mod n);
            List.nth endpoints ((i + 2) mod n);
          ]
        in
        Udp_node.create ~config ~loop ~listen:(List.nth endpoints i) ~bootstrap
          ~seed:(2000 + i) ())
  in
  Event_loop.run_for loop 1.2;
  (* Each node must have discovered peers beyond its bootstrap pair and
     exchanged real datagrams. *)
  Array.iteri
    (fun i node ->
      let stats = Udp_node.stats node in
      check_bool
        (Printf.sprintf "node %d sent datagrams (%d)" i stats.Udp_node.datagrams_out)
        true
        (stats.Udp_node.datagrams_out > 0);
      check_bool
        (Printf.sprintf "node %d received datagrams (%d)" i stats.Udp_node.datagrams_in)
        true
        (stats.Udp_node.datagrams_in > 0);
      check_int "no decode errors" 0 stats.Udp_node.decode_errors;
      let distinct_peers =
        List.sort_uniq compare (List.map Endpoint.to_string (Udp_node.view node))
      in
      check_bool
        (Printf.sprintf "node %d discovered > 2 peers (%d)" i
           (List.length distinct_peers))
        true
        (List.length distinct_peers > 2))
    nodes;
  (* The sampling service produced samples that are live overlay members. *)
  let all = List.map Endpoint.to_string endpoints in
  Array.iter
    (fun node ->
      let stream = Udp_node.samples node in
      check_bool "samples emitted" true
        (Basalt_core.Sample_stream.total stream > 0);
      Basalt_core.Sample_stream.iter
        (fun id ->
          let e = Endpoint.to_string (Endpoint.of_node_id id) in
          check_bool ("sample is a real endpoint: " ^ e) true (List.mem e all))
        stream)
    nodes;
  Array.iter Udp_node.close nodes

(* --- Metrics exposition --- *)

module Obs = Basalt_obs.Obs
module Metrics_server = Basalt_net.Metrics_server

let ep s =
  match Endpoint.of_string s with Ok e -> e | Error m -> Alcotest.fail m

let read_all fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ();
  Buffer.contents buf

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let metrics_server_serves_prometheus () =
  let loop = Event_loop.create ~clock:Unix.gettimeofday () in
  let obs = Obs.create () in
  let c = Obs.counter obs "net.datagrams_in" in
  Obs.Counter.add c 7;
  let srv =
    Metrics_server.serve ~loop ~listen:(ep "127.0.0.1:0")
      ~render:(fun () -> Obs.render_prometheus obs)
      ()
  in
  let addr = Metrics_server.endpoint srv in
  let client = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect client (Endpoint.to_sockaddr addr);
  let req = "GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n" in
  ignore (Unix.write_substring client req 0 (String.length req));
  Event_loop.run_for loop 0.1;
  let response = read_all client in
  Unix.close client;
  check_bool "status line" true
    (contains ~needle:"HTTP/1.0 200 OK" response);
  check_bool "content type" true
    (contains ~needle:"text/plain; version=0.0.4" response);
  check_bool "counter exposed" true
    (contains ~needle:"net_datagrams_in 7\n" response);
  check_int "one request served" 1 (Metrics_server.requests srv);
  (* A second scrape observes the updated value: render runs at scrape
     time, not at serve time. *)
  Obs.Counter.add c 5;
  let client2 = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect client2 (Endpoint.to_sockaddr addr);
  ignore (Unix.write_substring client2 req 0 (String.length req));
  Event_loop.run_for loop 0.1;
  let response2 = read_all client2 in
  Unix.close client2;
  check_bool "updated counter" true
    (contains ~needle:"net_datagrams_in 12\n" response2);
  check_int "two requests served" 2 (Metrics_server.requests srv);
  Metrics_server.close srv

let metrics_server_close_is_idempotent () =
  let loop = Event_loop.create ~clock:Unix.gettimeofday () in
  let srv =
    Metrics_server.serve ~loop ~listen:(ep "127.0.0.1:0")
      ~render:(fun () -> "x")
      ()
  in
  Metrics_server.close srv;
  Metrics_server.close srv

let () =
  Alcotest.run "net"
    [
      ( "endpoint",
        [
          Alcotest.test_case "parse" `Quick endpoint_parse;
          Alcotest.test_case "node id round trip" `Quick
            endpoint_node_id_round_trip;
          Alcotest.test_case "ids distinct" `Quick endpoint_ids_distinct;
          Alcotest.test_case "sockaddr" `Quick endpoint_sockaddr;
        ] );
      ( "event_loop",
        [
          Alcotest.test_case "timers fire in order" `Quick loop_timers_fire;
          Alcotest.test_case "every repeats" `Quick loop_every_fires_repeatedly;
          Alcotest.test_case "stop" `Quick loop_stop;
          Alcotest.test_case "fd callback" `Quick loop_fd_callback;
          Alcotest.test_case "virtual clock" `Quick loop_virtual_clock;
        ] );
      ( "frame",
        [
          Alcotest.test_case "round trip" `Quick frame_round_trip;
          Alcotest.test_case "byte-by-byte reassembly" `Quick
            frame_byte_by_byte;
          Alcotest.test_case "rejects oversize" `Quick frame_rejects_oversize;
          Alcotest.test_case "rejects bad payload" `Quick
            frame_rejects_bad_payload;
        ] );
      ( "udp",
        [
          Alcotest.test_case "garbage datagrams counted" `Quick
            udp_garbage_counted;
          Alcotest.test_case "retry backoff is capped and deterministic"
            `Quick udp_retry_backoff_capped;
          Alcotest.test_case "reply cancels pending retries" `Quick
            udp_retry_cleared_by_reply;
          Alcotest.test_case "self-injected loss drops datagrams" `Quick
            udp_inject_loss_drops;
          Alcotest.test_case "self-injected delay postpones datagrams" `Quick
            udp_inject_delay_postpones;
          Alcotest.test_case "overlay converges end-to-end" `Slow
            udp_overlay_converges;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "overlay converges end-to-end" `Slow
            tcp_overlay_converges;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "serves prometheus text" `Quick
            metrics_server_serves_prometheus;
          Alcotest.test_case "close is idempotent" `Quick
            metrics_server_close_is_idempotent;
        ] );
    ]
