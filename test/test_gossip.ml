(* Tests for basalt.gossip: the epidemic broadcast layer.

   Three levels: unit tests drive one node's handlers directly through a
   recording harness; the mini-network tests drain a synchronous
   in-memory message queue across a handful of nodes; the simulation
   tests mount the layer on the runner's app hook exactly as the
   [broadcast] experiment does and assert the end-to-end dissemination
   properties (exactly-once, full delivery under a fault-free network,
   degree bounds, bit-identical results at any pool width). *)

module Gossip = Basalt_gossip.Gossip
module Gconfig = Basalt_gossip.Config
module Delivery = Basalt_gossip.Delivery
module Message = Basalt_proto.Message
module Node_id = Basalt_proto.Node_id
module Rps = Basalt_proto.Rps
module Wire = Basalt_codec.Wire
module Rng = Basalt_prng.Rng
module Scenario = Basalt_sim.Scenario
module Runner = Basalt_sim.Runner
module Pool = Basalt_parallel.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let id = Node_id.of_int
let mid ~origin ~seqno = { Message.origin = id origin; seqno }

(* --- recording harness around one node --- *)

type harness = {
  g : Gossip.t;
  sent : (int * Message.t) list ref;  (* (dst, frame), oldest first *)
  delivered : (Message.mid * bytes) list ref;
}

let harness ?config ?(node = 0) ?(view = fun () -> [||]) ?(seed = 42) () =
  let sent = ref [] in
  let delivered = ref [] in
  let g =
    Gossip.create ?config ~node:(id node) ~view ~rng:(Rng.create ~seed)
      ~send:(fun ~dst msg -> sent := !sent @ [ (Node_id.to_int dst, msg) ])
      ~deliver:(fun m payload -> delivered := !delivered @ [ (m, payload) ])
      ()
  in
  { g; sent; delivered }

let sent_to h dst =
  List.filter_map
    (fun (d, msg) -> if d = dst then Some msg else None)
    !(h.sent)

let count_frames h pred = List.length (List.filter pred !(h.sent))

(* --- config --- *)

let config_validation () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Gossip.Config.make: need 0 < degree_lo <= degree <= degree_hi"
    (fun () -> ignore (Gconfig.make ~degree_lo:0 ()));
  expect "Gossip.Config.make: need 0 < degree_lo <= degree <= degree_hi"
    (fun () -> ignore (Gconfig.make ~degree:1 ~degree_lo:2 ()));
  expect "Gossip.Config.make: need 0 < degree_lo <= degree <= degree_hi"
    (fun () -> ignore (Gconfig.make ~degree:9 ()));
  expect "Gossip.Config.make: lazy_fanout < 0" (fun () ->
      ignore (Gconfig.make ~lazy_fanout:(-1) ()));
  expect "Gossip.Config.make: history < 1" (fun () ->
      ignore (Gconfig.make ~history:0 ()));
  expect "Gossip.Config.make: cache_capacity < 1" (fun () ->
      ignore (Gconfig.make ~cache_capacity:0 ()));
  expect "Gossip.Config.make: iwant_timeout < 1" (fun () ->
      ignore (Gconfig.make ~iwant_timeout:0 ()));
  expect "Gossip.Config.make: iwant_retries < 0" (fun () ->
      ignore (Gconfig.make ~iwant_retries:(-1) ()));
  let c = Gconfig.default in
  check_int "default degree" 4 c.Gconfig.degree;
  check_bool "default bounds" true
    (c.Gconfig.degree_lo <= c.Gconfig.degree
    && c.Gconfig.degree <= c.Gconfig.degree_hi)

(* --- publish --- *)

let publish_delivers_locally () =
  let h = harness () in
  let payload = Bytes.of_string "hello" in
  let m = Gossip.publish h.g payload in
  check_int "origin is self" 0 (Node_id.to_int m.Message.origin);
  check_int "first seqno" 0 m.Message.seqno;
  check_int "delivered locally once" 1 (List.length !(h.delivered));
  check_int "no mesh, no sends" 0 (List.length !(h.sent));
  let m2 = Gossip.publish h.g payload in
  check_int "seqno increments" 1 m2.Message.seqno;
  check_int "stats published" 2 (Gossip.stats h.g).Gossip.published

let publish_rejects_oversized () =
  let h = harness () in
  Alcotest.check_raises "too large"
    (Invalid_argument "Gossip.publish: payload too large") (fun () ->
      ignore (Gossip.publish h.g (Bytes.create (Wire.max_payload + 1))))

let publish_pushes_to_mesh () =
  let h = harness () in
  Gossip.on_samples h.g [ id 1; id 2; id 3; id 4; id 5 ];
  Gossip.heartbeat h.g;
  check_int "mesh topped up to degree" Gconfig.default.Gconfig.degree
    (Gossip.eager_degree h.g);
  h.sent := [];
  let payload = Bytes.of_string "data" in
  ignore (Gossip.publish h.g payload);
  let data_frames =
    count_frames h (fun (_, msg) ->
        match msg with
        | Message.Gossip { hops = 1; _ } -> true
        | _ -> false)
  in
  check_int "one data frame per eager peer" (Gossip.eager_degree h.g)
    data_frames

(* --- Rps.null / empty view --- *)

let null_rps_tolerated () =
  let sent = ref 0 in
  let delivered = ref 0 in
  let g =
    Gossip.of_rps
      ~rps:(Rps.null (id 7))
      ~rng:(Rng.create ~seed:1)
      ~send:(fun ~dst:_ _ -> incr sent)
      ~deliver:(fun _ _ -> incr delivered)
      ()
  in
  check_int "node id from rps" 7 (Node_id.to_int (Gossip.node g));
  ignore (Gossip.publish g (Bytes.of_string "into the void"));
  Gossip.heartbeat g;
  Gossip.heartbeat g;
  Gossip.on_samples g [];
  check_int "local delivery still exact-once" 1 !delivered;
  check_int "an empty view mutes the layer" 0 !sent;
  check_int "mesh stays empty" 0 (Gossip.eager_degree g)

(* --- data path --- *)

let data_frame ~origin ~seqno ~hops payload =
  Message.Gossip { mid = mid ~origin ~seqno; hops; payload }

let dedup_never_redelivers () =
  let h = harness () in
  let frame = data_frame ~origin:9 ~seqno:0 ~hops:1 (Bytes.of_string "x") in
  check_bool "consumed" true (Gossip.on_message h.g ~from:(id 9) frame);
  check_bool "dup consumed" true (Gossip.on_message h.g ~from:(id 3) frame);
  check_bool "dup again" true (Gossip.on_message h.g ~from:(id 9) frame);
  check_int "delivered once" 1 (List.length !(h.delivered));
  check_int "duplicates counted" 2 (Gossip.stats h.g).Gossip.duplicates

let sender_of_new_data_joins_mesh () =
  let h = harness () in
  ignore
    (Gossip.on_message h.g ~from:(id 9)
       (data_frame ~origin:9 ~seqno:0 ~hops:1 (Bytes.of_string "x")));
  check_bool "sender grafted" true
    (List.exists (Node_id.equal (id 9)) (Gossip.eager_peers h.g))

let iwant_served_from_cache () =
  let h = harness () in
  let payload = Bytes.of_string "served" in
  let m = Gossip.publish h.g payload in
  h.sent := [];
  ignore (Gossip.on_message h.g ~from:(id 5) (Message.Iwant [| m |]));
  (match sent_to h 5 with
  | [ Message.Gossip { mid = m'; hops; payload = p } ] ->
      check_bool "same mid" true (Message.mid_equal m m');
      check_int "hops bumped" 1 hops;
      check_bool "same payload" true (Bytes.equal payload p)
  | _ -> Alcotest.fail "expected exactly one data frame to the requester");
  h.sent := [];
  ignore
    (Gossip.on_message h.g ~from:(id 5)
       (Message.Iwant [| mid ~origin:3 ~seqno:77 |]));
  check_int "unknown mid is ignored" 0 (List.length !(h.sent))

let ihave_triggers_one_iwant () =
  let h = harness () in
  let m1 = mid ~origin:2 ~seqno:0 and m2 = mid ~origin:3 ~seqno:1 in
  ignore (Gossip.on_message h.g ~from:(id 4) (Message.Ihave [| m1; m2 |]));
  (match sent_to h 4 with
  | [ Message.Iwant ms ] -> check_int "both requested" 2 (Array.length ms)
  | _ -> Alcotest.fail "expected one IWant to the advertiser");
  h.sent := [];
  ignore (Gossip.on_message h.g ~from:(id 5) (Message.Ihave [| m1 |]));
  check_int "already-wanted mid not re-requested" 0 (List.length !(h.sent));
  ignore
    (Gossip.on_message h.g ~from:(id 4)
       (data_frame ~origin:2 ~seqno:0 ~hops:2 (Bytes.of_string "m1")));
  check_int "recovered delivery" 1 (List.length !(h.delivered))

let iwant_recovery_rotates_holders () =
  let config = Gconfig.make ~iwant_timeout:1 ~iwant_retries:2 () in
  let h = harness ~config () in
  let m = mid ~origin:2 ~seqno:0 in
  ignore (Gossip.on_message h.g ~from:(id 4) (Message.Ihave [| m |]));
  h.sent := [];
  Gossip.heartbeat h.g;
  let grafts =
    count_frames h (fun (d, msg) ->
        match msg with Message.Graft -> d = 4 | _ -> false)
  in
  let rerequests =
    count_frames h (fun (d, msg) ->
        match msg with Message.Iwant _ -> d = 4 | _ -> false)
  in
  check_int "grafted towards the advertiser" 1 grafts;
  check_int "re-requested from the advertiser" 1 rerequests

(* --- mesh management --- *)

let graft_refused_at_capacity () =
  let config = Gconfig.make ~degree:1 ~degree_lo:1 ~degree_hi:2 () in
  let h = harness ~config () in
  ignore (Gossip.on_message h.g ~from:(id 1) Message.Graft);
  ignore (Gossip.on_message h.g ~from:(id 2) Message.Graft);
  check_int "grafts accepted up to hi" 2 (Gossip.eager_degree h.g);
  h.sent := [];
  ignore (Gossip.on_message h.g ~from:(id 3) Message.Graft);
  check_int "over-capacity graft refused" 2 (Gossip.eager_degree h.g);
  (match sent_to h 3 with
  | [ Message.Prune ] -> ()
  | _ -> Alcotest.fail "expected a Prune back to the refused grafter");
  ignore (Gossip.on_message h.g ~from:(id 1) Message.Prune);
  check_int "prune removes" 1 (Gossip.eager_degree h.g)

let heartbeat_rotates_mesh () =
  let h = harness () in
  Gossip.on_samples h.g [ id 1; id 2; id 3; id 4; id 5; id 6 ];
  Gossip.heartbeat h.g;
  let before = Gossip.eager_peers h.g in
  check_int "at target degree" Gconfig.default.Gconfig.degree
    (List.length before);
  h.sent := [];
  Gossip.heartbeat h.g;
  check_int "still at target degree" Gconfig.default.Gconfig.degree
    (Gossip.eager_degree h.g);
  (* The oldest eager peer is always demoted (degree > degree_lo), even
     if the top-up happens to re-select it from the sample pool. *)
  let oldest = Node_id.to_int (List.hd before) in
  check_bool "oldest peer was pruned" true
    (List.exists
       (fun (d, msg) ->
         d = oldest && match msg with Message.Prune -> true | _ -> false)
       !(h.sent))

let sampler_frames_fall_through () =
  let h = harness () in
  check_bool "pull request" false
    (Gossip.on_message h.g ~from:(id 1) Message.Pull_request);
  check_bool "push" false
    (Gossip.on_message h.g ~from:(id 1) (Message.Push [| id 2 |]));
  check_bool "graft" true (Gossip.on_message h.g ~from:(id 1) Message.Graft);
  check_bool "prune" true (Gossip.on_message h.g ~from:(id 1) Message.Prune)

(* --- mini-network: synchronous queue over n nodes --- *)

type net = {
  nodes : Gossip.t array;
  queue : (int * int * Message.t) Queue.t;  (* src, dst, frame *)
  tracker : Delivery.t;
}

let mini_network ?config ~n ~seed () =
  let queue = Queue.create () in
  let tracker = Delivery.create ~n () in
  let master = Rng.create ~seed in
  let all = Array.init n id in
  let nodes =
    Array.init n (fun i ->
        Gossip.create ?config ~node:(id i)
          ~view:(fun () -> Array.of_list (List.filter (fun p -> Node_id.to_int p <> i) (Array.to_list all)))
          ~rng:(Rng.split master)
          ~send:(fun ~dst msg -> Queue.push (i, Node_id.to_int dst, msg) queue)
          ~deliver:(fun m _ -> Delivery.delivered tracker m ~node:i ~time:0.0)
          ())
  in
  { nodes; queue; tracker }

let drain net =
  while not (Queue.is_empty net.queue) do
    let src, dst, msg = Queue.pop net.queue in
    ignore (Gossip.on_message net.nodes.(dst) ~from:(id src) msg)
  done

let feed_samples net =
  let n = Array.length net.nodes in
  Array.iteri
    (fun i g ->
      Gossip.on_samples g
        (List.filter_map
           (fun j -> if j = i then None else Some (id j))
           (List.init n Fun.id)))
    net.nodes

let mini_eager_flood () =
  let net = mini_network ~n:10 ~seed:7 () in
  feed_samples net;
  Array.iter Gossip.heartbeat net.nodes;
  drain net;
  let m = Gossip.publish net.nodes.(0) (Bytes.of_string "flood") in
  Delivery.published net.tracker m ~time:0.0;
  drain net;
  check_bool "everyone delivered"
    true
    (Delivery.fraction net.tracker = 1.0);
  check_int "exactly once each" 0 (Delivery.duplicate_deliveries net.tracker);
  Array.iter
    (fun g ->
      check_bool "degree within bounds" true
        (Gossip.eager_degree g <= Gconfig.default.Gconfig.degree_hi))
    net.nodes

let mini_lazy_recovery () =
  (* Degree-one meshes form a sparse relay graph that cannot cover
     everyone eagerly; the IHave/IWant rounds must close the gap. *)
  let config =
    Gconfig.make ~degree:1 ~degree_lo:1 ~degree_hi:1 ~lazy_fanout:4 ()
  in
  let net = mini_network ~config ~n:8 ~seed:3 () in
  feed_samples net;
  Array.iter Gossip.heartbeat net.nodes;
  drain net;
  let m = Gossip.publish net.nodes.(0) (Bytes.of_string "lazy") in
  Delivery.published net.tracker m ~time:0.0;
  drain net;
  check_bool "eager reach incomplete at degree 1" true
    (Delivery.fraction net.tracker < 1.0);
  (* A few digest/recovery rounds: each heartbeat advertises, each drain
     answers the IWants. *)
  for _ = 1 to 4 do
    Array.iter Gossip.heartbeat net.nodes;
    drain net
  done;
  check_bool "lazy path completes delivery" true
    (Delivery.fraction net.tracker = 1.0);
  check_int "still exactly once" 0 (Delivery.duplicate_deliveries net.tracker)

(* --- simulation: the runner's app hook, as the broadcast experiment --- *)

let publishes = 3

let run_sim ?fault ?(n = 80) ~seed () =
  let steps = 40.0 in
  let s =
    Scenario.make ~name:"test-broadcast" ~n ~f:0.0 ~steps ~seed ?fault
      ~protocol:(Scenario.Basalt (Basalt_core.Config.make ~v:16 ()))
      ~latency:(Basalt_engine.Link.Latency.Uniform { lo = 0.05; hi = 0.2 })
      ()
  in
  let q = Scenario.num_correct s in
  let tracker = Delivery.create ~n:q () in
  let gossips = Array.make q None in
  let app ctx =
    List.iter
      (fun k ->
        ctx.Runner.app_schedule ~delay:(15.0 +. float_of_int k) (fun () ->
            let p = (5 * k) + 1 in
            if ctx.Runner.app_alive p then
              match gossips.(p) with
              | Some g ->
                  let m =
                    Gossip.publish g (Bytes.make 16 (Char.chr (97 + k)))
                  in
                  Delivery.published tracker m ~time:(ctx.Runner.app_now ())
              | None -> ()))
      (List.init publishes Fun.id);
    fun i ->
      let g =
        Gossip.create ~obs:ctx.Runner.app_obs ~node:(id i)
          ~view:(fun () -> ctx.Runner.app_view i)
          ~rng:(Rng.split ctx.Runner.app_rng)
          ~send:(fun ~dst msg -> ctx.Runner.app_send ~src:i ~dst msg)
          ~deliver:(fun m _ ->
            Delivery.delivered tracker m ~node:i ~time:(ctx.Runner.app_now ()))
          ()
      in
      gossips.(i) <- Some g;
      {
        Runner.app_deliver = (fun ~from msg -> Gossip.on_message g ~from msg);
        app_tick = (fun ps -> Gossip.on_samples g ps);
        app_round = (fun () -> Gossip.heartbeat g);
      }
  in
  ignore (Runner.run ~app s);
  (tracker, gossips)

let sim_exact_once_clean () =
  let tracker, gossips = run_sim ~seed:11 () in
  check_int "all messages tracked" publishes (Delivery.messages tracker);
  check_bool "full delivery on a fault-free network" true
    (Delivery.fraction tracker = 1.0);
  check_int "exactly-once at every node" 0
    (Delivery.duplicate_deliveries tracker);
  Array.iter
    (function
      | None -> ()
      | Some g ->
          let d = Gossip.eager_degree g in
          check_bool "degree within [lo, hi]" true
            (d >= Gconfig.default.Gconfig.degree_lo
            && d <= Gconfig.default.Gconfig.degree_hi))
    gossips

let sim_exact_once_under_faults () =
  (* Loss delays delivery and triggers the recovery path, but dedup must
     still keep the deliver callback exactly-once. *)
  let fault =
    Basalt_engine.Fault.make
      ~base:
        (Basalt_engine.Fault.link
           ~loss:(Basalt_engine.Link.Loss.Bernoulli 0.2) ())
      ()
  in
  let tracker, _ = run_sim ~fault ~seed:12 () in
  check_int "exactly-once survives loss" 0
    (Delivery.duplicate_deliveries tracker);
  check_bool "most deliveries still happen" true
    (Delivery.fraction tracker > 0.9)

let summary_of tracker gossips =
  let stats =
    Array.fold_left
      (fun (d, dup, ih, iw) -> function
        | None -> (d, dup, ih, iw)
        | Some g ->
            let s = Gossip.stats g in
            ( d + s.Gossip.delivered,
              dup + s.Gossip.duplicates,
              ih + s.Gossip.ihave_sent,
              iw + s.Gossip.iwant_sent ))
      (0, 0, 0, 0) gossips
  in
  (Delivery.fraction tracker, Delivery.duplicate_deliveries tracker, stats)

let sim_pool_determinism () =
  let seeds = [ 21; 22; 23; 24 ] in
  let task seed =
    let tracker, gossips = run_sim ~n:60 ~seed () in
    summary_of tracker gossips
  in
  let with_domains d =
    let pool = Pool.create ~domains:d () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.map ~pool task seeds)
  in
  let sequential = List.map task seeds in
  let one = with_domains 1 in
  let four = with_domains 4 in
  check_bool "pool of 1 matches in-process" true (sequential = one);
  check_bool "pool of 4 matches pool of 1" true (one = four)

(* --- properties --- *)

module Check = Basalt_check.Check
module Gen = Check.Gen
module Gens = Check.Gens
module Print = Check.Print

let prop_dedup_exact_once =
  let frame =
    Gen.map2
      (fun (sender, m) hops -> (sender, m, hops))
      (Gen.pair (Gen.int_range 1 8) (Gens.mid ~max_id:6 ()))
      (Gen.int_range 1 5)
  in
  Check.prop ~name:"deliver fires exactly once per distinct mid" ~count:200
    ~print:
      (Print.list (fun (s, m, h) ->
           Printf.sprintf "(%d, %d#%d, %d)" s
             (Node_id.to_int m.Message.origin)
             m.Message.seqno h))
    (Gen.list ~max_len:40 frame)
    (fun frames ->
      let h = harness () in
      List.iter
        (fun (sender, m, hops) ->
          ignore
            (Gossip.on_message h.g ~from:(id sender)
               (Message.Gossip { mid = m; hops; payload = Bytes.empty })))
        frames;
      let distinct =
        List.sort_uniq compare
          (List.map
             (fun (_, m, _) -> (Node_id.to_int m.Message.origin, m.Message.seqno))
             frames)
      in
      List.length !(h.delivered) = List.length distinct)

type op =
  | Samples of int list
  | Heartbeat
  | Graft_from of int
  | Prune_from of int
  | Data_from of int * int

let apply_op h k = function
  | Samples ids -> Gossip.on_samples h.g (List.map id ids)
  | Heartbeat -> Gossip.heartbeat h.g
  | Graft_from p -> ignore (Gossip.on_message h.g ~from:(id p) Message.Graft)
  | Prune_from p -> ignore (Gossip.on_message h.g ~from:(id p) Message.Prune)
  | Data_from (p, seqno) ->
      ignore
        (Gossip.on_message h.g ~from:(id p)
           (data_frame ~origin:(1 + (seqno mod 9)) ~seqno:(k * 100) ~hops:1
              Bytes.empty))

let op_gen =
  Gen.frequency
    [
      (2, Gen.map (fun l -> Samples l) (Gen.list ~max_len:8 (Gen.int_range 1 20)));
      (3, Gen.return Heartbeat);
      (3, Gen.map (fun p -> Graft_from p) (Gen.int_range 1 20));
      (2, Gen.map (fun p -> Prune_from p) (Gen.int_range 1 20));
      (3, Gen.map2 (fun p s -> Data_from (p, s)) (Gen.int_range 1 20)
          (Gen.nat ~max:50));
    ]

let print_op = function
  | Samples l -> "Samples " ^ Print.list Print.int l
  | Heartbeat -> "Heartbeat"
  | Graft_from p -> Printf.sprintf "Graft_from %d" p
  | Prune_from p -> Printf.sprintf "Prune_from %d" p
  | Data_from (p, s) -> Printf.sprintf "Data_from (%d, %d)" p s

let prop_degree_bounded =
  Check.prop ~name:"eager degree never exceeds degree_hi" ~count:200
    ~print:(Print.list print_op)
    (Gen.list ~max_len:60 op_gen)
    (fun ops ->
      let h = harness () in
      List.for_all
        (fun (k, op) ->
          apply_op h k op;
          Gossip.eager_degree h.g <= Gconfig.default.Gconfig.degree_hi)
        (List.mapi (fun k op -> (k, op)) ops))

let prop_self_never_in_mesh =
  Check.prop ~name:"the mesh never contains the local node" ~count:200
    ~print:(Print.list print_op)
    (Gen.list ~max_len:60 op_gen)
    (fun ops ->
      let h = harness () in
      List.iteri (fun k op -> apply_op h k op) ops;
      not (List.exists (Node_id.equal (id 0)) (Gossip.eager_peers h.g)))

let () =
  Alcotest.run "gossip"
    [
      ( "unit",
        [
          Alcotest.test_case "config validation" `Quick config_validation;
          Alcotest.test_case "publish delivers locally" `Quick
            publish_delivers_locally;
          Alcotest.test_case "publish rejects oversized" `Quick
            publish_rejects_oversized;
          Alcotest.test_case "publish pushes to mesh" `Quick
            publish_pushes_to_mesh;
          Alcotest.test_case "null rps tolerated" `Quick null_rps_tolerated;
          Alcotest.test_case "dedup never redelivers" `Quick
            dedup_never_redelivers;
          Alcotest.test_case "data sender joins mesh" `Quick
            sender_of_new_data_joins_mesh;
          Alcotest.test_case "iwant served from cache" `Quick
            iwant_served_from_cache;
          Alcotest.test_case "ihave triggers one iwant" `Quick
            ihave_triggers_one_iwant;
          Alcotest.test_case "iwant recovery" `Quick
            iwant_recovery_rotates_holders;
          Alcotest.test_case "graft capacity" `Quick graft_refused_at_capacity;
          Alcotest.test_case "heartbeat rotation" `Quick heartbeat_rotates_mesh;
          Alcotest.test_case "sampler frames fall through" `Quick
            sampler_frames_fall_through;
        ] );
      ( "mini-network",
        [
          Alcotest.test_case "eager flood reaches everyone" `Quick
            mini_eager_flood;
          Alcotest.test_case "lazy recovery closes the gap" `Quick
            mini_lazy_recovery;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "exact-once, full delivery, clean" `Quick
            sim_exact_once_clean;
          Alcotest.test_case "exact-once under loss" `Quick
            sim_exact_once_under_faults;
          Alcotest.test_case "bit-identical at -j1 vs -j4" `Slow
            sim_pool_determinism;
        ] );
      Check.suite "properties"
        [ prop_dedup_exact_once; prop_degree_bounded; prop_self_never_in_mesh ];
    ]
