(* Tests for basalt.avalanche: Snowball consensus, the consensus network,
   and the simulated live deployment. *)

open Basalt_avalanche

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Snowball --- *)

let sb_config_validation () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Snowball.config: sample_size <= 0" (fun () ->
      ignore (Snowball.config ~sample_size:0 ()));
  expect "Snowball.config: alpha out of (0, sample_size]" (fun () ->
      ignore (Snowball.config ~sample_size:5 ~alpha:6 ()));
  expect "Snowball.config: beta <= 0" (fun () ->
      ignore (Snowball.config ~beta:0 ()))

let sb_color_helpers () =
  check_bool "equal" true (Snowball.color_equal Snowball.Red Snowball.Red);
  check_bool "not equal" false (Snowball.color_equal Snowball.Red Snowball.Blue);
  check_bool "opposite" true
    (Snowball.color_equal (Snowball.opposite Snowball.Red) Snowball.Blue);
  Alcotest.(check string) "pp" "red"
    (Format.asprintf "%a" Snowball.pp_color Snowball.Red)

let votes color n = List.init n (fun _ -> color)

let sb_initial_state () =
  let t = Snowball.create (Snowball.config ()) Snowball.Red in
  check_bool "prefers initial" true
    (Snowball.color_equal (Snowball.preference t) Snowball.Red);
  check_bool "undecided" false (Snowball.decided t);
  check_bool "no decision" true (Snowball.decision t = None);
  check_int "no confidence" 0 (Snowball.confidence t Snowball.Red)

let sb_quorum_updates () =
  let cfg = Snowball.config ~sample_size:10 ~alpha:7 ~beta:3 () in
  let t = Snowball.create cfg Snowball.Red in
  Snowball.register_votes t (votes Snowball.Blue 7 @ votes Snowball.Red 3);
  check_int "blue confidence" 1 (Snowball.confidence t Snowball.Blue);
  check_bool "preference flipped" true
    (Snowball.color_equal (Snowball.preference t) Snowball.Blue);
  check_int "streak" 1 (Snowball.streak t)

let sb_no_quorum_resets_streak () =
  let cfg = Snowball.config ~sample_size:10 ~alpha:7 ~beta:3 () in
  let t = Snowball.create cfg Snowball.Red in
  Snowball.register_votes t (votes Snowball.Red 8);
  check_int "streak 1" 1 (Snowball.streak t);
  Snowball.register_votes t (votes Snowball.Red 5 @ votes Snowball.Blue 5);
  check_int "streak reset on no quorum" 0 (Snowball.streak t);
  check_bool "still undecided" false (Snowball.decided t)

let sb_color_flip_restarts_streak () =
  let cfg = Snowball.config ~sample_size:10 ~alpha:7 ~beta:3 () in
  let t = Snowball.create cfg Snowball.Red in
  Snowball.register_votes t (votes Snowball.Red 8);
  Snowball.register_votes t (votes Snowball.Red 8);
  check_int "streak 2" 2 (Snowball.streak t);
  Snowball.register_votes t (votes Snowball.Blue 8);
  check_int "streak restarted at 1" 1 (Snowball.streak t)

let sb_decides_after_beta () =
  let cfg = Snowball.config ~sample_size:10 ~alpha:7 ~beta:3 () in
  let t = Snowball.create cfg Snowball.Blue in
  for _ = 1 to 3 do
    Snowball.register_votes t (votes Snowball.Red 8)
  done;
  check_bool "decided" true (Snowball.decided t);
  check_bool "decided red" true (Snowball.decision t = Some Snowball.Red);
  (* After decision the instance is frozen. *)
  Snowball.register_votes t (votes Snowball.Blue 10);
  check_bool "frozen" true (Snowball.decision t = Some Snowball.Red)

let sb_confidence_governs_preference () =
  let cfg = Snowball.config ~sample_size:10 ~alpha:7 ~beta:100 () in
  let t = Snowball.create cfg Snowball.Red in
  Snowball.register_votes t (votes Snowball.Red 8);
  Snowball.register_votes t (votes Snowball.Red 8);
  (* One blue quorum does not flip (confidence 1 < red's 2). *)
  Snowball.register_votes t (votes Snowball.Blue 8);
  check_bool "keeps red (snowball memory)" true
    (Snowball.color_equal (Snowball.preference t) Snowball.Red);
  (* Two more blue quorums overtake. *)
  Snowball.register_votes t (votes Snowball.Blue 8);
  Snowball.register_votes t (votes Snowball.Blue 8);
  check_bool "flips to blue" true
    (Snowball.color_equal (Snowball.preference t) Snowball.Blue)

(* --- Tx_dag --- *)

let tx id parents conflict = { Tx_dag.Tx.id; parents; conflict }

let dag_genesis () =
  let d = Tx_dag.create () in
  check_bool "genesis known" true (Tx_dag.known d 0);
  check_bool "genesis accepted" true (Tx_dag.accepted d 0);
  check_bool "genesis preferred" true (Tx_dag.is_preferred d 0);
  check_int "one tx" 1 (List.length (Tx_dag.transactions d))

let dag_insert () =
  let d = Tx_dag.create () in
  check_bool "insert ok" true (Result.is_ok (Tx_dag.insert d (tx 1 [ 0 ] 7)));
  check_bool "idempotent" true (Result.is_ok (Tx_dag.insert d (tx 1 [ 0 ] 7)));
  check_bool "unknown parent rejected" true
    (Result.is_error (Tx_dag.insert d (tx 9 [ 404 ] 7)));
  check_bool "known" true (Tx_dag.known d 1);
  Alcotest.(check (list int)) "order" [ 0; 1 ] (Tx_dag.transactions d)

let dag_conflict_sets () =
  let d = Tx_dag.create () in
  ignore (Tx_dag.insert d (tx 1 [ 0 ] 7));
  ignore (Tx_dag.insert d (tx 2 [ 0 ] 7));
  ignore (Tx_dag.insert d (tx 3 [ 0 ] 8));
  Alcotest.(check (list int)) "set of 7" [ 1; 2 ] (Tx_dag.conflict_set d (tx 1 [ 0 ] 7));
  (* First inserted member is initially preferred. *)
  check_bool "first preferred" true (Tx_dag.is_preferred d 1);
  check_bool "second not" false (Tx_dag.is_preferred d 2);
  check_bool "singleton preferred" true (Tx_dag.is_preferred d 3)

let dag_strong_preference () =
  let d = Tx_dag.create () in
  ignore (Tx_dag.insert d (tx 1 [ 0 ] 7));
  ignore (Tx_dag.insert d (tx 2 [ 0 ] 7));
  ignore (Tx_dag.insert d (tx 3 [ 2 ] 8));
  (* tx 3 sits on the *non-preferred* branch: not strongly preferred
     even though its own set is singleton. *)
  check_bool "own set ok" true (Tx_dag.is_preferred d 3);
  check_bool "ancestor not preferred" false (Tx_dag.is_strongly_preferred d 3);
  (* Flip the conflict by giving tx 2 chits. *)
  Tx_dag.record_query_success d 2;
  check_bool "preference flipped" true (Tx_dag.is_preferred d 2);
  check_bool "now strongly preferred" true (Tx_dag.is_strongly_preferred d 3)

let dag_confidence_progeny () =
  let d = Tx_dag.create () in
  ignore (Tx_dag.insert d (tx 1 [ 0 ] 7));
  ignore (Tx_dag.insert d (tx 2 [ 1 ] 8));
  ignore (Tx_dag.insert d (tx 3 [ 2 ] 9));
  Tx_dag.record_query_success d 3;
  (* One chit on the leaf counts toward every ancestor's confidence. *)
  check_int "leaf" 1 (Tx_dag.confidence d 3);
  check_int "middle" 1 (Tx_dag.confidence d 2);
  check_int "root of chain" 1 (Tx_dag.confidence d 1);
  Tx_dag.record_query_success d 2;
  check_int "chits accumulate" 2 (Tx_dag.confidence d 1);
  check_bool "chit recorded" true (Tx_dag.chit d 3);
  check_bool "no chit" false (Tx_dag.chit d 1)

let dag_acceptance_rules () =
  let d = Tx_dag.create () in
  ignore (Tx_dag.insert d (tx 1 [ 0 ] 7));
  (* Build a chain of singleton-set descendants; each success counts for
     tx 1's conflict set (consecutive successes of its preferred). *)
  for i = 2 to 8 do
    ignore (Tx_dag.insert d (tx i [ i - 1 ] (100 + i)));
    Tx_dag.record_query_success d i
  done;
  (* After 7 descendant successes (plus none for itself), tx 1 has
     count >= beta1 = 5 in a singleton set. *)
  check_bool "safe early commitment" true (Tx_dag.accepted ~beta1:5 ~beta2:20 d 1);
  check_bool "not under larger beta1" false
    (Tx_dag.accepted ~beta1:10 ~beta2:20 d 1);
  (* A failure resets the streak. *)
  Tx_dag.record_query_failure d 8;
  check_bool "reset by failure" false (Tx_dag.accepted ~beta1:5 ~beta2:20 d 1)

let dag_acceptance_needs_ancestors () =
  let d = Tx_dag.create () in
  ignore (Tx_dag.insert d (tx 1 [ 0 ] 7));
  ignore (Tx_dag.insert d (tx 2 [ 0 ] 7));
  (* conflicted parent *)
  ignore (Tx_dag.insert d (tx 3 [ 1 ] 8));
  for _ = 1 to 6 do
    Tx_dag.record_query_success d 3
  done;
  (* tx 3 has plenty of successes but its parent's set is conflicted and
     lacks beta2 consecutive successes. *)
  check_bool "parent gates acceptance" false (Tx_dag.accepted ~beta1:5 ~beta2:20 d 3)

let dag_ancestor_closure () =
  let d = Tx_dag.create () in
  ignore (Tx_dag.insert d (tx 1 [ 0 ] 7));
  ignore (Tx_dag.insert d (tx 2 [ 1 ] 8));
  let closure = Tx_dag.ancestor_closure d 2 in
  Alcotest.(check (list int))
    "topological, parents first" [ 0; 1; 2 ]
    (List.map (fun t -> t.Tx_dag.Tx.id) closure);
  (* Replaying a closure into a fresh DAG must always succeed. *)
  let d2 = Tx_dag.create () in
  List.iter
    (fun t -> check_bool "replay ok" true (Result.is_ok (Tx_dag.insert d2 t)))
    closure

let dag_frontier () =
  let d = Tx_dag.create () in
  check_bool "genesis is the frontier" true (Tx_dag.frontier d = [ 0 ]);
  ignore (Tx_dag.insert d (tx 1 [ 0 ] 7));
  ignore (Tx_dag.insert d (tx 2 [ 1 ] 8));
  Alcotest.(check (list int)) "single leaf" [ 2 ] (Tx_dag.frontier d)

(* Property: for any randomly grown DAG, every transaction's ancestor
   closure replays cleanly into a fresh DAG (parents always precede
   children). *)
module Check = Basalt_check.Check

let prop_closure_replayable =
  Check.prop ~name:"ancestor closures always replay" ~count:200
    ~print:
      Check.Print.(list (pair int int))
    Check.Gen.(list ~max_len:20 (pair (nat ~max:9) (nat ~max:3)))
    (fun spec ->
      let d = Tx_dag.create () in
      (* Grow a DAG: each entry attaches a new tx to an existing one. *)
      let next_id = ref 1 in
      List.iter
        (fun (parent_hint, conflict) ->
          let existing = Tx_dag.transactions d in
          let parent =
            List.nth existing (parent_hint mod List.length existing)
          in
          let tx =
            { Tx_dag.Tx.id = !next_id; parents = [ parent ]; conflict }
          in
          incr next_id;
          ignore (Tx_dag.insert d tx))
        spec;
      List.for_all
        (fun id ->
          let closure = Tx_dag.ancestor_closure d id in
          let fresh = Tx_dag.create () in
          List.for_all
            (fun tx -> Result.is_ok (Tx_dag.insert fresh tx))
            closure
          && Tx_dag.known fresh id)
        (Tx_dag.transactions d))

(* --- Dag_network --- *)

let dag_network_validation () =
  Alcotest.check_raises "betas"
    (Invalid_argument "Dag_network.config: need 0 < beta1 <= beta2") (fun () ->
      ignore (Dag_network.config ~beta1:5 ~beta2:4 ()))

let dag_network_safety_and_liveness () =
  let r =
    Dag_network.run
      (Dag_network.config ~n:100 ~f:0.15 ~steps:150.0 ~warmup:20.0
         ~sampling:
           (Basalt_avalanche.Network.Service
              (Basalt_sim.Scenario.Basalt (Basalt_core.Config.make ~v:24 ~k:6 ())))
         ())
  in
  check_bool "safety" true r.Dag_network.safety;
  check_bool "conflict resolved somewhere" true
    (r.Dag_network.conflict_resolved_fraction > 0.2);
  check_bool "virtuous progress" true
    (r.Dag_network.virtuous_accepted_fraction > 0.2);
  check_bool "committee pollution bounded" true (r.Dag_network.committee_byz < 0.3)

(* --- Network --- *)

let net_config_validation () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Network.config: f out of [0,1)" (fun () ->
      ignore (Network.config ~f:1.5 ()));
  expect "Network.config: steps <= warmup" (fun () ->
      ignore (Network.config ~warmup:100.0 ~steps:50.0 ()))

let net_honest_convergence () =
  (* No Byzantine nodes, strong initial majority: everyone decides the
     majority color and agrees. *)
  let r =
    Network.run
      (Network.config ~n:60 ~f:0.0 ~initial_red:0.8 ~warmup:10.0 ~steps:120.0
         ~snowball:(Snowball.config ~sample_size:8 ~alpha:6 ~beta:8 ())
         ~sampling:(Network.Service (Basalt_sim.Scenario.Basalt (Basalt_core.Config.make ~v:16 ~k:4 ())))
         ())
  in
  check_bool "most decide" true (r.Network.decided_fraction > 0.8);
  check_bool "agreement" true r.Network.agreement;
  check_bool "majority wins" true (r.Network.decided_red_fraction > 0.99)

let net_full_knowledge () =
  let r =
    Network.run
      (Network.config ~n:60 ~f:0.1 ~initial_red:0.8 ~warmup:5.0 ~steps:100.0
         ~snowball:(Snowball.config ~sample_size:8 ~alpha:6 ~beta:8 ())
         ~sampling:Network.Full_knowledge ())
  in
  check_bool "decides under mild attack" true (r.Network.decided_fraction > 0.5);
  check_bool "agreement" true r.Network.agreement;
  check_bool "committee pollution near f" true (r.Network.committee_byz < 0.3)

let net_queries_counted () =
  let r =
    Network.run
      (Network.config ~n:40 ~f:0.0 ~warmup:5.0 ~steps:50.0
         ~sampling:Network.Full_knowledge ())
  in
  check_bool "queries sent" true (r.Network.queries_sent > 0)

(* --- Deployment --- *)

let deploy_config_validation () =
  Alcotest.check_raises "adversarial >= n"
    (Invalid_argument "Deployment.config: adversarial out of [0, n)") (fun () ->
      ignore (Deployment.config ~n:10 ~adversarial:10 ()))

let deploy_result_shape () =
  let r =
    Deployment.run (Deployment.config ~n:120 ~adversarial:24 ~v:30 ~steps:80.0 ())
  in
  check_bool "true proportion" true
    (Float.abs (r.Deployment.true_proportion -. 0.2) < 1e-9);
  check_bool "basalt prop in [0,1]" true
    (r.Deployment.basalt_proportion >= 0.0 && r.Deployment.basalt_proportion <= 1.0);
  check_bool "full-knowledge near truth" true
    (Float.abs (r.Deployment.full_knowledge_proportion -. 0.2) < 0.1);
  check_bool "witness emitted samples" true (r.Deployment.witness_samples > 0)

let deploy_witness_survives () =
  let r =
    Deployment.run (Deployment.config ~n:120 ~adversarial:24 ~v:30 ~steps:80.0 ())
  in
  check_bool "eclipse resisted" false r.Deployment.witness_isolated;
  (* The §5 headline: the Basalt-derived sampler's malicious proportion
     stays close to the ground truth despite the concentrated attack. *)
  check_bool "sampler near truth" true
    (Float.abs (r.Deployment.basalt_proportion -. r.Deployment.true_proportion)
    < 0.12)

let () =
  Alcotest.run "avalanche"
    [
      ( "snowball",
        [
          Alcotest.test_case "config validation" `Quick sb_config_validation;
          Alcotest.test_case "color helpers" `Quick sb_color_helpers;
          Alcotest.test_case "initial state" `Quick sb_initial_state;
          Alcotest.test_case "quorum updates" `Quick sb_quorum_updates;
          Alcotest.test_case "no quorum resets streak" `Quick
            sb_no_quorum_resets_streak;
          Alcotest.test_case "color flip restarts streak" `Quick
            sb_color_flip_restarts_streak;
          Alcotest.test_case "decides after beta" `Quick sb_decides_after_beta;
          Alcotest.test_case "confidence governs preference" `Quick
            sb_confidence_governs_preference;
        ] );
      ( "tx_dag",
        [
          Alcotest.test_case "genesis" `Quick dag_genesis;
          Alcotest.test_case "insert" `Quick dag_insert;
          Alcotest.test_case "conflict sets" `Quick dag_conflict_sets;
          Alcotest.test_case "strong preference" `Quick dag_strong_preference;
          Alcotest.test_case "confidence over progeny" `Quick
            dag_confidence_progeny;
          Alcotest.test_case "acceptance rules" `Quick dag_acceptance_rules;
          Alcotest.test_case "acceptance needs ancestors" `Quick
            dag_acceptance_needs_ancestors;
          Alcotest.test_case "ancestor closure" `Quick dag_ancestor_closure;
          Alcotest.test_case "frontier" `Quick dag_frontier;
          Check.to_alcotest ~suite:"tx_dag" prop_closure_replayable;
        ] );
      ( "dag_network",
        [
          Alcotest.test_case "config validation" `Quick dag_network_validation;
          Alcotest.test_case "safety and liveness" `Slow
            dag_network_safety_and_liveness;
        ] );
      ( "network",
        [
          Alcotest.test_case "config validation" `Quick net_config_validation;
          Alcotest.test_case "honest convergence" `Slow net_honest_convergence;
          Alcotest.test_case "full knowledge" `Slow net_full_knowledge;
          Alcotest.test_case "queries counted" `Quick net_queries_counted;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "config validation" `Quick deploy_config_validation;
          Alcotest.test_case "result shape" `Slow deploy_result_shape;
          Alcotest.test_case "witness survives" `Slow deploy_witness_survives;
        ] );
    ]
