(* Tests for basalt.adversary: the collective Byzantine coalition. *)

open Basalt_adversary
module Node_id = Basalt_proto.Node_id
module Message = Basalt_proto.Message

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let id = Node_id.of_int
let rng () = Basalt_prng.Rng.create ~seed:5

let malicious = Array.init 10 (fun i -> id (90 + i))
let correct = Array.init 90 id

let capture () =
  let sent = ref [] in
  let send ~src ~dst msg = sent := (src, dst, msg) :: !sent in
  (sent, send)

let make ?(force = 2.0) ?strategy () =
  let sent, send = capture () in
  let adv =
    Adversary.create ~rng:(rng ()) ~malicious ~correct ~v:8 ~force ?strategy
      ~send ()
  in
  (adv, sent)

let validation () =
  let _, send = capture () in
  Alcotest.check_raises "empty coalition"
    (Invalid_argument "Adversary.create: empty coalition") (fun () ->
      ignore (Adversary.create ~rng:(rng ()) ~malicious:[||] ~correct ~v:8 ~force:1.0 ~send ()));
  Alcotest.check_raises "bad v" (Invalid_argument "Adversary.create: v must be positive")
    (fun () ->
      ignore (Adversary.create ~rng:(rng ()) ~malicious ~correct ~v:0 ~force:1.0 ~send ()));
  Alcotest.check_raises "negative force"
    (Invalid_argument "Adversary.create: negative force") (fun () ->
      ignore (Adversary.create ~rng:(rng ()) ~malicious ~correct ~v:8 ~force:(-1.0) ~send ()))

let membership () =
  let adv, _ = make () in
  check_bool "malicious member" true (Adversary.is_malicious adv (id 95));
  check_bool "correct non-member" false (Adversary.is_malicious adv (id 5))

let forged_views () =
  let adv, _ = make () in
  for _ = 1 to 20 do
    let view = Adversary.malicious_view adv in
    check_int "size v" 8 (Array.length view);
    Array.iter
      (fun p -> check_bool "all malicious" true (Adversary.is_malicious adv p))
      view
  done

let pull_answered () =
  let adv, sent = make () in
  Adversary.on_message adv ~victim_reply:true ~from:(id 3) ~to_:(id 91)
    Message.Pull_request;
  match !sent with
  | [ (src, dst, Message.Pull_reply view) ] ->
      check_int "reply from the queried malicious node" 91 (Node_id.to_int src);
      check_int "reply to requester" 3 (Node_id.to_int dst);
      Array.iter
        (fun p -> check_bool "forged ids" true (Adversary.is_malicious adv p))
        view
  | _ -> Alcotest.fail "expected one pull reply"

let pull_censored () =
  let adv, sent = make () in
  Adversary.on_message adv ~victim_reply:false ~from:(id 3) ~to_:(id 91)
    Message.Pull_request;
  check_int "no reply when censoring" 0 (List.length !sent)

let non_pull_absorbed () =
  let adv, sent = make () in
  Adversary.on_message adv ~victim_reply:true ~from:(id 3) ~to_:(id 91)
    (Message.Push [| id 1 |]);
  Adversary.on_message adv ~victim_reply:true ~from:(id 3) ~to_:(id 91)
    (Message.Push_id (id 1));
  check_int "absorbed silently" 0 (List.length !sent)

let flood_volume () =
  let adv, sent = make ~force:2.0 () in
  Adversary.on_round adv;
  (* force * |malicious| = 20 pushes per round exactly (integer force). *)
  check_int "push volume" 20 (List.length !sent);
  check_int "counter" 20 (Adversary.pushes_sent adv);
  List.iter
    (fun (src, dst, msg) ->
      check_bool "from malicious" true (Adversary.is_malicious adv src);
      check_bool "to correct" false (Adversary.is_malicious adv dst);
      match msg with
      | Message.Push view ->
          Array.iter
            (fun p -> check_bool "payload malicious" true (Adversary.is_malicious adv p))
            view
      | _ -> Alcotest.fail "flood must use pushes")
    !sent

let fractional_force () =
  (* force 0.05 with 10 malicious = 0.5 expected pushes per round; over
     many rounds the average must approach 0.5. *)
  let adv, sent = make ~force:0.05 () in
  let rounds = 2000 in
  for _ = 1 to rounds do
    Adversary.on_round adv
  done;
  let per_round = float_of_int (List.length !sent) /. float_of_int rounds in
  check_bool "expectation honoured" true (Float.abs (per_round -. 0.5) < 0.1)

let eclipse_targets_victim () =
  let adv, sent = make ~strategy:(Adversary.Eclipse (id 7)) () in
  Adversary.on_round adv;
  check_bool "sends pushes" true (List.length !sent > 0);
  List.iter
    (fun (_, dst, _) -> check_int "all aimed at victim" 7 (Node_id.to_int dst))
    !sent

let silent_sends_nothing () =
  let adv, sent = make ~strategy:Adversary.Silent () in
  for _ = 1 to 10 do
    Adversary.on_round adv
  done;
  check_int "no pushes" 0 (List.length !sent);
  (* ...but still answers pulls (the F=0 attack of §4.3). *)
  Adversary.on_message adv ~victim_reply:true ~from:(id 1) ~to_:(id 90)
    Message.Pull_request;
  check_int "answers pulls" 1 (List.length !sent)

let strategy_accessor () =
  let adv, _ = make ~strategy:Adversary.Silent () in
  check_bool "strategy" true (Adversary.strategy adv = Adversary.Silent)

module Check = Basalt_check.Check

let prop_forged_views_malicious =
  Check.prop ~name:"forged views contain only coalition members" ~count:200
    ~print:Check.Print.int
    (Check.Gen.nat ~max:10_000)
    (fun seed ->
      let send ~src:_ ~dst:_ _ = () in
      let adv =
        Adversary.create
          ~rng:(Basalt_prng.Rng.create ~seed)
          ~malicious ~correct ~v:8 ~force:1.0 ~send ()
      in
      Array.for_all (Adversary.is_malicious adv) (Adversary.malicious_view adv))

let () =
  Alcotest.run "adversary"
    [
      ( "adversary",
        [
          Alcotest.test_case "validation" `Quick validation;
          Alcotest.test_case "membership" `Quick membership;
          Alcotest.test_case "forged views" `Quick forged_views;
          Alcotest.test_case "pull answered" `Quick pull_answered;
          Alcotest.test_case "pull censored" `Quick pull_censored;
          Alcotest.test_case "non-pull absorbed" `Quick non_pull_absorbed;
          Alcotest.test_case "flood volume" `Quick flood_volume;
          Alcotest.test_case "fractional force" `Slow fractional_force;
          Alcotest.test_case "eclipse targets victim" `Quick
            eclipse_targets_victim;
          Alcotest.test_case "silent" `Quick silent_sends_nothing;
          Alcotest.test_case "strategy accessor" `Quick strategy_accessor;
          Check.to_alcotest ~suite:"adversary" prop_forged_views_malicious;
        ] );
    ]
