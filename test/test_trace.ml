(* Tests for tool/trace (basalt_trace): parsing, the four reports, and
   their byte-stable text/CSV/JSON renderings over synthetic traces. *)

module Obs = Basalt_obs.Obs
module Trace = Basalt_trace.Trace

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let ev time name fields = { Obs.time; name; fields }

(* A tiny synthetic run: two spans per name, a publish and three
   deliveries under one gossip trace id, one untraced event. *)
let sample_events =
  [
    ev 0.0 "gossip.publish" [ ("trace", Obs.Str "3#0"); ("node", Obs.Int 3) ];
    ev 0.5 "proto.pull"
      [ ("sid", Obs.Int 0); ("t0", Obs.Float 0.0); ("dur", Obs.Float 0.5) ];
    ev 1.0 "gossip.deliver"
      [ ("trace", Obs.Str "3#0"); ("node", Obs.Int 1); ("hops", Obs.Int 1) ];
    ev 1.5 "proto.pull"
      [ ("sid", Obs.Int 1); ("t0", Obs.Float 1.0); ("dur", Obs.Float 0.5) ];
    ev 2.5 "gossip.deliver"
      [ ("trace", Obs.Str "3#0"); ("node", Obs.Int 2); ("hops", Obs.Int 2) ];
    ev 3.0 "engine.tick" [];
    ev 6.0 "gossip.deliver"
      [ ("trace", Obs.Str "3#0"); ("node", Obs.Int 4); ("hops", Obs.Int 3) ];
  ]

(* --- Parsing --- *)

let parse_round_trip () =
  let lines = List.map Obs.event_to_json sample_events in
  let parsed = Trace.parse_lines lines in
  check_int "event count" (List.length sample_events) (List.length parsed);
  List.iter2
    (fun a b ->
      check_string "name" a.Obs.name b.Obs.name;
      check_int "fields" (List.length a.Obs.fields) (List.length b.Obs.fields))
    sample_events parsed

let parse_blank_lines_skipped () =
  let lines =
    [ ""; Obs.event_to_json (ev 1.0 "a" []); "  "; Obs.event_to_json (ev 2.0 "b" []) ]
  in
  check_int "two events" 2 (List.length (Trace.parse_lines lines))

let parse_error_has_line_number () =
  let lines = [ Obs.event_to_json (ev 1.0 "a" []); "not json" ] in
  (try
     ignore (Trace.parse_lines lines);
     Alcotest.fail "expected Parse_error"
   with Trace.Parse_error { line; text } ->
     check_int "1-based line" 2 line;
     check_string "offending text" "not json" text)

(* --- summarize --- *)

let summarize_text_pinned () =
  check_string "summarize text"
    ("events 7  names 4  trace_ids 1  traced_events 4\n"
   ^ "name                                  count          first           last\n"
   ^ "engine.tick                               1            3.0            3.0\n"
   ^ "gossip.deliver                            3            1.0            6.0\n"
   ^ "gossip.publish                            1            0.0            0.0\n"
   ^ "proto.pull                                2            0.5            1.5\n")
    (Trace.summarize sample_events)

let summarize_csv_pinned () =
  check_string "summarize csv"
    "name,count,first,last\n\
     engine.tick,1,3.0,3.0\n\
     gossip.deliver,3,1.0,6.0\n\
     gossip.publish,1,0.0,0.0\n\
     proto.pull,2,0.5,1.5\n"
    (Trace.summarize ~format:Trace.Csv sample_events)

(* --- spans --- *)

let spans_percentiles_exact () =
  (* 10 spans with durations 1..10: nearest-rank p50 = 5, p90 = 9,
     p99 = 10, max = 10. *)
  let events =
    List.init 10 (fun i ->
        ev (float_of_int i) "s"
          [
            ("sid", Obs.Int i);
            ("t0", Obs.Float 0.0);
            ("dur", Obs.Float (float_of_int (i + 1)));
          ])
  in
  check_string "spans csv" "span,count,p50,p90,p99,max\ns,10,5.0,9.0,10.0,10.0\n"
    (Trace.spans ~format:Trace.Csv events)

let spans_ignore_non_span_events () =
  check_string "spans csv"
    "span,count,p50,p90,p99,max\nproto.pull,2,0.5,0.5,0.5,0.5\n"
    (Trace.spans ~format:Trace.Csv sample_events)

(* --- curve --- *)

let curve_absolute_time () =
  check_string "deliver curve"
    "t,count,cum\n0.0,1,1\n2.0,1,2\n6.0,1,3\n"
    (Trace.curve ~format:Trace.Csv ~bucket:2.0 ~ev:"gossip.deliver"
       sample_events)

let curve_ttd () =
  (* t0 for trace "3#0" is the publish at 0.0; deliveries at 1.0, 2.5,
     6.0 land in 1.0-wide latency buckets 1, 2, 6. *)
  check_string "ttd curve"
    "latency,count,cum\n1.0,1,1\n2.0,1,2\n6.0,1,3\n"
    (Trace.curve ~format:Trace.Csv ~ttd:true ~ev:"gossip.deliver"
       sample_events)

let curve_bad_bucket () =
  Alcotest.check_raises "bucket 0"
    (Invalid_argument "Trace.curve: bucket must be > 0") (fun () ->
      ignore (Trace.curve ~bucket:0.0 ~ev:"x" []))

(* --- diff --- *)

let diff_counts_and_medians () =
  let b =
    sample_events
    @ [
        ev 7.0 "gossip.deliver" [ ("trace", Obs.Str "3#0"); ("node", Obs.Int 5) ];
        ev 8.0 "proto.pull"
          [ ("sid", Obs.Int 2); ("t0", Obs.Float 7.0); ("dur", Obs.Float 1.0) ];
      ]
  in
  check_string "diff csv"
    "name,count_a,count_b,delta,p50_a,p50_b\n\
     engine.tick,1,1,0,-,-\n\
     gossip.deliver,3,4,1,-,-\n\
     gossip.publish,1,1,0,-,-\n\
     proto.pull,2,3,1,0.5,0.5\n"
    (Trace.diff ~format:Trace.Csv sample_events b)

let diff_disjoint_names () =
  let a = [ ev 1.0 "only.a" [] ] and b = [ ev 1.0 "only.b" [] ] in
  check_string "diff csv"
    "name,count_a,count_b,delta,p50_a,p50_b\n\
     only.a,1,0,-1,-,-\n\
     only.b,0,1,1,-,-\n"
    (Trace.diff ~format:Trace.Csv a b)

(* --- JSON format --- *)

let json_output_pinned () =
  check_string "spans json"
    "[{\"span\":\"proto.pull\",\"count\":2,\"p50\":0.5,\"p90\":0.5,\"p99\":0.5,\"max\":0.5}]\n"
    (Trace.spans ~format:Trace.Json sample_events);
  check_string "curve json"
    "[{\"latency\":1.0,\"count\":1,\"cum\":1},{\"latency\":2.0,\"count\":1,\"cum\":2},{\"latency\":6.0,\"count\":1,\"cum\":3}]\n"
    (Trace.curve ~format:Trace.Json ~ttd:true ~ev:"gossip.deliver"
       sample_events)

let () =
  Alcotest.run "trace"
    [
      ( "parse",
        [
          Alcotest.test_case "round trip" `Quick parse_round_trip;
          Alcotest.test_case "blank lines skipped" `Quick
            parse_blank_lines_skipped;
          Alcotest.test_case "error has line number" `Quick
            parse_error_has_line_number;
        ] );
      ( "reports",
        [
          Alcotest.test_case "summarize text" `Quick summarize_text_pinned;
          Alcotest.test_case "summarize csv" `Quick summarize_csv_pinned;
          Alcotest.test_case "spans exact percentiles" `Quick
            spans_percentiles_exact;
          Alcotest.test_case "spans selects span events" `Quick
            spans_ignore_non_span_events;
          Alcotest.test_case "curve absolute" `Quick curve_absolute_time;
          Alcotest.test_case "curve ttd" `Quick curve_ttd;
          Alcotest.test_case "curve bad bucket" `Quick curve_bad_bucket;
          Alcotest.test_case "diff counts and medians" `Quick
            diff_counts_and_medians;
          Alcotest.test_case "diff disjoint names" `Quick diff_disjoint_names;
          Alcotest.test_case "json repeatable" `Quick json_output_pinned;
        ] );
    ]
